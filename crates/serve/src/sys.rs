//! Minimal vendored syscall shim for the event-driven I/O layer.
//!
//! The offline build has no `libc` crate, so the handful of syscalls the
//! epoll reactor needs — `epoll_create1`/`epoll_ctl`/`epoll_pwait`,
//! `eventfd2`, `accept4`, nonblocking `SO_REUSEPORT` listeners and raw
//! `read`/`write` — are issued directly via inline assembly, in the same
//! spirit as the `vendor/` stand-ins for serde and rand. Only Linux on
//! x86_64/aarch64 is covered; everything in this module is compiled out on
//! other targets and the server falls back to the blocking pool there (see
//! [`crate::app::IoModel`]).
//!
//! The surface is deliberately tiny and RAII-safe: every descriptor lives in
//! an owning [`Fd`] that closes on drop, and every call returns
//! `std::io::Result` with the errno folded into `std::io::Error`, so callers
//! use ordinary `ErrorKind::WouldBlock`/`Interrupted` matching.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};

// ---------------------------------------------------------------------------
// Raw syscall entry (per-arch) and numbers.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const CLOSE: usize = 3;
    pub const SOCKET: usize = 41;
    pub const BIND: usize = 49;
    pub const LISTEN: usize = 50;
    pub const GETSOCKNAME: usize = 51;
    pub const SETSOCKOPT: usize = 54;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const ACCEPT4: usize = 288;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
    pub const CLOSE: usize = 57;
    pub const SOCKET: usize = 198;
    pub const BIND: usize = 200;
    pub const LISTEN: usize = 201;
    pub const GETSOCKNAME: usize = 204;
    pub const SETSOCKOPT: usize = 208;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const ACCEPT4: usize = 242;
    pub const EVENTFD2: usize = 19;
    pub const EPOLL_CREATE1: usize = 20;
}

/// Issues a raw syscall; returns the kernel's value (negative = `-errno`).
///
/// # Safety
/// The caller must uphold the kernel contract of syscall `n` for every
/// argument (valid pointers, correct lengths, owned descriptors).
#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(
    n: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") n => ret,
        in("rdi") a1,
        in("rsi") a2,
        in("rdx") a3,
        in("r10") a4,
        in("r8") a5,
        in("r9") a6,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

/// Issues a raw syscall; returns the kernel's value (negative = `-errno`).
///
/// # Safety
/// The caller must uphold the kernel contract of syscall `n` for every
/// argument (valid pointers, correct lengths, owned descriptors).
#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(
    n: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    core::arch::asm!(
        "svc 0",
        in("x8") n,
        inlateout("x0") a1 => ret,
        in("x1") a2,
        in("x2") a3,
        in("x3") a4,
        in("x4") a5,
        in("x5") a6,
        options(nostack),
    );
    ret
}

/// Folds a raw return value into `io::Result`, mapping `-errno` onto
/// `io::Error::from_raw_os_error` (so `WouldBlock`/`Interrupted` matching
/// works exactly as with `std` I/O).
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error((-ret) as i32))
    } else {
        Ok(ret as usize)
    }
}

// ---------------------------------------------------------------------------
// Constants (Linux UAPI).
// ---------------------------------------------------------------------------

const AF_INET: u16 = 2;
const AF_INET6: u16 = 10;
const SOCK_STREAM: usize = 1;
const SOCK_NONBLOCK: usize = 0o4000;
const SOCK_CLOEXEC: usize = 0o2000000;
const SOL_SOCKET: usize = 1;
const SO_REUSEADDR: usize = 2;
const SO_REUSEPORT: usize = 15;
const IPPROTO_TCP: usize = 6;
const TCP_NODELAY: usize = 1;
const EFD_CLOEXEC: usize = 0o2000000;
const EFD_NONBLOCK: usize = 0o4000;
const EPOLL_CLOEXEC: usize = 0o2000000;

/// `epoll_ctl` op: register a new descriptor.
pub const EPOLL_CTL_ADD: i32 = 1;
/// `epoll_ctl` op: deregister a descriptor.
pub const EPOLL_CTL_DEL: i32 = 2;
/// `epoll_ctl` op: change a registered descriptor's interest set.
pub const EPOLL_CTL_MOD: i32 = 3;

/// Readiness: the descriptor is readable.
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the descriptor is writable.
pub const EPOLLOUT: u32 = 0x004;
/// Readiness: an error condition is pending.
pub const EPOLLERR: u32 = 0x008;
/// Readiness: hang-up (both directions closed).
pub const EPOLLHUP: u32 = 0x010;
/// Readiness: the peer closed its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;
/// Flag: edge-triggered delivery.
pub const EPOLLET: u32 = 1 << 31;

/// One `epoll` readiness record. On x86_64 the kernel ABI packs the struct;
/// on every other architecture it is naturally aligned.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    /// Readiness bits (`EPOLLIN` | …).
    pub events: u32,
    /// Caller-chosen token, handed back verbatim.
    pub data: u64,
}

impl EpollEvent {
    /// Copies out the readiness bits (safe on the packed layout).
    pub fn readiness(&self) -> u32 {
        self.events
    }

    /// Copies out the token (safe on the packed layout).
    pub fn token(&self) -> u64 {
        self.data
    }
}

// ---------------------------------------------------------------------------
// Owning descriptor.
// ---------------------------------------------------------------------------

/// An owned file descriptor, closed on drop.
#[derive(Debug)]
pub struct Fd(i32);

impl Fd {
    /// The raw descriptor number.
    pub fn raw(&self) -> i32 {
        self.0
    }
}

impl Drop for Fd {
    fn drop(&mut self) {
        // Closing also deregisters the fd from any epoll instance it was
        // watched by (there are no dup'd copies in this crate).
        unsafe {
            let _ = syscall6(nr::CLOSE, self.0 as usize, 0, 0, 0, 0, 0);
        }
    }
}

// ---------------------------------------------------------------------------
// epoll + eventfd.
// ---------------------------------------------------------------------------

/// Creates a close-on-exec epoll instance.
pub fn epoll_create() -> io::Result<Fd> {
    let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
    Ok(Fd(fd as i32))
}

/// Adds, modifies or removes `fd` on the epoll instance with the given
/// interest bits and token.
pub fn epoll_ctl(epoll: &Fd, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
    let event = EpollEvent {
        events,
        data: token,
    };
    check(unsafe {
        syscall6(
            nr::EPOLL_CTL,
            epoll.raw() as usize,
            op as usize,
            fd as usize,
            std::ptr::addr_of!(event) as usize,
            0,
            0,
        )
    })?;
    Ok(())
}

/// Waits for readiness, filling `events`; returns how many fired. A negative
/// `timeout_ms` blocks indefinitely; `0` polls. `EINTR` is retried here so
/// callers never see it.
pub fn epoll_wait(epoll: &Fd, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let ret = unsafe {
            syscall6(
                nr::EPOLL_PWAIT,
                epoll.raw() as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
                0, // no sigmask
                8, // sigsetsize (ignored with a null mask)
            )
        };
        match check(ret) {
            Ok(n) => return Ok(n),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Creates a nonblocking close-on-exec eventfd (the reactors' wake-up line).
pub fn eventfd() -> io::Result<Fd> {
    let fd = check(unsafe { syscall6(nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0) })?;
    Ok(Fd(fd as i32))
}

/// Posts one wake-up on an eventfd (adds 1 to its counter).
pub fn eventfd_write(fd: &Fd) -> io::Result<()> {
    let one: u64 = 1;
    write(fd, &one.to_ne_bytes()).map(|_| ())
}

/// Drains an eventfd's counter so the next post re-arms readiness. A clean
/// `WouldBlock` (nothing pending) is not an error.
pub fn eventfd_drain(fd: &Fd) {
    let mut buf = [0u8; 8];
    let _ = read(fd, &mut buf);
}

// ---------------------------------------------------------------------------
// Raw I/O.
// ---------------------------------------------------------------------------

/// Reads into `buf`; `Ok(0)` is end-of-stream, `WouldBlock` means the edge is
/// drained.
pub fn read(fd: &Fd, buf: &mut [u8]) -> io::Result<usize> {
    check(unsafe {
        syscall6(
            nr::READ,
            fd.raw() as usize,
            buf.as_mut_ptr() as usize,
            buf.len(),
            0,
            0,
            0,
        )
    })
}

/// Writes from `buf`, returning how many bytes the kernel took.
pub fn write(fd: &Fd, buf: &[u8]) -> io::Result<usize> {
    check(unsafe {
        syscall6(
            nr::WRITE,
            fd.raw() as usize,
            buf.as_ptr() as usize,
            buf.len(),
            0,
            0,
            0,
        )
    })
}

// ---------------------------------------------------------------------------
// Sockets: SO_REUSEPORT listeners and nonblocking accept.
// ---------------------------------------------------------------------------

/// `struct sockaddr_in` (IPv4).
#[repr(C)]
struct SockAddrV4 {
    family: u16,
    port_be: u16,
    addr_be: [u8; 4],
    zero: [u8; 8],
}

/// `struct sockaddr_in6` (IPv6).
#[repr(C)]
struct SockAddrV6 {
    family: u16,
    port_be: u16,
    flowinfo: u32,
    addr: [u8; 16],
    scope_id: u32,
}

fn setsockopt(fd: &Fd, level: usize, name: usize, value: i32) -> io::Result<()> {
    check(unsafe {
        syscall6(
            nr::SETSOCKOPT,
            fd.raw() as usize,
            level,
            name,
            std::ptr::addr_of!(value) as usize,
            std::mem::size_of::<i32>(),
            0,
        )
    })?;
    Ok(())
}

/// Disables Nagle on a connected socket (same policy as the blocking pool's
/// `set_nodelay(true)`).
pub fn set_nodelay(fd: &Fd) -> io::Result<()> {
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, 1)
}

fn bind_fd(fd: &Fd, addr: SocketAddr) -> io::Result<()> {
    match addr {
        SocketAddr::V4(v4) => {
            let raw = SockAddrV4 {
                family: AF_INET,
                port_be: v4.port().to_be(),
                addr_be: v4.ip().octets(),
                zero: [0; 8],
            };
            check(unsafe {
                syscall6(
                    nr::BIND,
                    fd.raw() as usize,
                    std::ptr::addr_of!(raw) as usize,
                    std::mem::size_of::<SockAddrV4>(),
                    0,
                    0,
                    0,
                )
            })?;
        }
        SocketAddr::V6(v6) => {
            let raw = SockAddrV6 {
                family: AF_INET6,
                port_be: v6.port().to_be(),
                flowinfo: v6.flowinfo(),
                addr: v6.ip().octets(),
                scope_id: v6.scope_id(),
            };
            check(unsafe {
                syscall6(
                    nr::BIND,
                    fd.raw() as usize,
                    std::ptr::addr_of!(raw) as usize,
                    std::mem::size_of::<SockAddrV6>(),
                    0,
                    0,
                    0,
                )
            })?;
        }
    }
    Ok(())
}

/// The socket's locally bound address (resolves `:0` ephemeral ports).
pub fn local_addr(fd: &Fd) -> io::Result<SocketAddr> {
    // Large enough for sockaddr_in6.
    let mut buf = [0u8; 28];
    let mut len: u32 = buf.len() as u32;
    check(unsafe {
        syscall6(
            nr::GETSOCKNAME,
            fd.raw() as usize,
            buf.as_mut_ptr() as usize,
            std::ptr::addr_of_mut!(len) as usize,
            0,
            0,
            0,
        )
    })?;
    let family = u16::from_ne_bytes([buf[0], buf[1]]);
    let port = u16::from_be_bytes([buf[2], buf[3]]);
    if family == AF_INET {
        let ip = std::net::Ipv4Addr::new(buf[4], buf[5], buf[6], buf[7]);
        Ok(SocketAddr::from((ip, port)))
    } else if family == AF_INET6 {
        let mut octets = [0u8; 16];
        octets.copy_from_slice(&buf[8..24]);
        Ok(SocketAddr::from((std::net::Ipv6Addr::from(octets), port)))
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("getsockname returned unknown address family {family}"),
        ))
    }
}

/// Binds one nonblocking `SO_REUSEPORT` listener on `addr`.
fn listen_one(addr: SocketAddr) -> io::Result<Fd> {
    let domain = match addr {
        SocketAddr::V4(_) => AF_INET as usize,
        SocketAddr::V6(_) => AF_INET6 as usize,
    };
    let fd = Fd(check(unsafe {
        syscall6(
            nr::SOCKET,
            domain,
            SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
            0,
            0,
            0,
            0,
        )
    })? as i32);
    setsockopt(&fd, SOL_SOCKET, SO_REUSEADDR, 1)?;
    setsockopt(&fd, SOL_SOCKET, SO_REUSEPORT, 1)?;
    bind_fd(&fd, addr)?;
    check(unsafe { syscall6(nr::LISTEN, fd.raw() as usize, 1024, 0, 0, 0, 0) })?;
    Ok(fd)
}

/// Binds `count` nonblocking `SO_REUSEPORT` listeners on `addr` — one per
/// reactor, so the kernel shards incoming connections across them. A `:0`
/// port is resolved by the first bind and shared by the rest. Returns the
/// listeners and the concrete bound address.
pub fn listen_reuseport(addr: &str, count: usize) -> io::Result<(Vec<Fd>, SocketAddr)> {
    let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolves to nothing")
    })?;
    let first = listen_one(addr)?;
    let bound = local_addr(&first)?;
    let mut fds = vec![first];
    for _ in 1..count.max(1) {
        fds.push(listen_one(bound)?);
    }
    Ok((fds, bound))
}

/// Accepts one pending connection as a nonblocking close-on-exec socket.
/// `WouldBlock` means the accept queue is drained.
pub fn accept(listener: &Fd) -> io::Result<Fd> {
    let fd = check(unsafe {
        syscall6(
            nr::ACCEPT4,
            listener.raw() as usize,
            0,
            0,
            SOCK_NONBLOCK | SOCK_CLOEXEC,
            0,
            0,
        )
    })?;
    Ok(Fd(fd as i32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    #[test]
    fn eventfd_posts_and_drains_through_epoll() {
        let epoll = epoll_create().unwrap();
        let waker = eventfd().unwrap();
        epoll_ctl(&epoll, EPOLL_CTL_ADD, waker.raw(), EPOLLIN, 7).unwrap();
        // Nothing posted: a zero-timeout wait sees nothing.
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(epoll_wait(&epoll, &mut events, 0).unwrap(), 0);
        // One post: the wait fires with our token; draining re-arms it.
        eventfd_write(&waker).unwrap();
        let n = epoll_wait(&epoll, &mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert_ne!(events[0].readiness() & EPOLLIN, 0);
        eventfd_drain(&waker);
        assert_eq!(epoll_wait(&epoll, &mut events, 0).unwrap(), 0);
    }

    #[test]
    fn reuseport_listeners_accept_nonblocking_sockets() {
        let (listeners, addr) = listen_reuseport("127.0.0.1:0", 2).unwrap();
        assert_eq!(listeners.len(), 2);
        assert_ne!(addr.port(), 0, "ephemeral port resolved");
        for listener in &listeners {
            assert_eq!(local_addr(listener).unwrap(), addr);
            // Accept queue is empty: nonblocking accept must not hang.
            let err = accept(listener).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        }
        // A client connection lands on exactly one of the sharded listeners.
        let mut client = std::net::TcpStream::connect(addr).unwrap();
        client.write_all(b"ping").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut accepted = None;
        for listener in &listeners {
            match accept(listener) {
                Ok(fd) => {
                    assert!(accepted.is_none(), "one connection, one accept");
                    accepted = Some(fd);
                }
                Err(e) => assert_eq!(e.kind(), io::ErrorKind::WouldBlock),
            }
        }
        let conn = accepted.expect("the connection landed on a shard");
        set_nodelay(&conn).unwrap();
        let mut buf = [0u8; 16];
        let n = read(&conn, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
        assert_eq!(write(&conn, b"pong").unwrap(), 4);
        let mut echo = [0u8; 4];
        std::io::Read::read_exact(&mut client, &mut echo).unwrap();
        assert_eq!(&echo, b"pong");
    }
}
