//! Route table and request handlers.
//!
//! Every handler returns a `(&'static str, Response)` pair: the static
//! endpoint label feeds the metrics registry, the response is written by the
//! connection loop. Handlers are pure functions of the shared [`AppState`]
//! plus the parsed request — no I/O — which keeps them trivially testable.

use std::sync::Arc;
use std::time::Instant;

use ayd_core::{ExactModel, FailureModelSpec, ModelError, ProfileSpec, SpeedupProfile};
use ayd_platforms::{ExperimentSetup, Platform, PlatformId, ScenarioId};
use ayd_sweep::{
    evaluate_analytic_observed, evaluate_many, AnalyticEval, OperatingPoint, ProcessorAxis,
    ScenarioGrid, SweepExecutor, SweepRow, CSV_HEADER,
};

use crate::app::{AppState, JobView};
use crate::http::{Request, Response};
use crate::json::Json;

/// Maximum queries accepted in one `/v1/batch` body.
const MAX_BATCH: usize = 10_000;

/// Dispatches one parsed request, returning the endpoint label (for metrics)
/// and the response.
pub fn route(state: &Arc<AppState>, req: &Request) -> (&'static str, Response) {
    let path = req.target.split('?').next().unwrap_or("");
    match path {
        "/healthz" => match req.method.as_str() {
            "GET" => ("healthz", health(state)),
            _ => ("healthz", method_not_allowed("GET")),
        },
        "/metrics" => match req.method.as_str() {
            "GET" => {
                let cluster = state
                    .coordinator
                    .as_ref()
                    .map(|coordinator| coordinator.stats(Instant::now()));
                (
                    "metrics",
                    Response::text(
                        200,
                        "OK",
                        state.metrics.render_prometheus(
                            &state.cache.stats(),
                            &state.gauge_snapshot(),
                            cluster.as_ref(),
                        ),
                    ),
                )
            }
            _ => ("metrics", method_not_allowed("GET")),
        },
        "/v1/trace/recent" => match req.method.as_str() {
            "GET" => ("trace_recent", trace_recent(req)),
            _ => ("trace_recent", method_not_allowed("GET")),
        },
        "/v1/optimize" => match req.method.as_str() {
            "POST" => ("optimize", optimize(state, req)),
            _ => ("optimize", method_not_allowed("POST")),
        },
        "/v1/batch" => match req.method.as_str() {
            "POST" => ("batch", batch(state, req)),
            _ => ("batch", method_not_allowed("POST")),
        },
        "/v1/sweep" => match req.method.as_str() {
            "POST" => ("sweep_submit", sweep_submit(state, req)),
            _ => ("sweep_submit", method_not_allowed("POST")),
        },
        "/v1/workers/register" => match req.method.as_str() {
            "POST" => ("worker_register", worker_register(state, req)),
            _ => ("worker_register", method_not_allowed("POST")),
        },
        "/v1/workers" => match req.method.as_str() {
            "GET" => ("workers", workers_list(state)),
            _ => ("workers", method_not_allowed("GET")),
        },
        _ if path.starts_with("/v1/workers/") => {
            let rest = &path["/v1/workers/".len()..];
            let id = rest.strip_suffix("/heartbeat").and_then(|t| t.parse().ok());
            match (req.method.as_str(), id) {
                ("POST", Some(id)) => ("worker_heartbeat", worker_heartbeat(state, req, id)),
                (_, Some(_)) => ("worker_heartbeat", method_not_allowed("POST")),
                (_, None) => ("worker_heartbeat", not_found()),
            }
        }
        "/v1/shards/run" => match req.method.as_str() {
            "POST" => ("shard_run", shard_run(state, req)),
            _ => ("shard_run", method_not_allowed("POST")),
        },
        _ if path.starts_with("/v1/sweep/") => {
            let rest = &path["/v1/sweep/".len()..];
            // Worker → coordinator chunk upload:
            // POST /v1/sweep/{job}/shards/{index}/chunk?worker=&token=&epoch=
            if let Some((job_text, tail)) = rest.split_once("/shards/") {
                let ids = tail.strip_suffix("/chunk").and_then(|index_text| {
                    Some((
                        job_text.parse::<u64>().ok()?,
                        index_text.parse::<usize>().ok()?,
                    ))
                });
                return match (req.method.as_str(), ids) {
                    ("POST", Some((job, index))) => {
                        ("shard_chunk", shard_chunk(state, req, job, index))
                    }
                    (_, Some(_)) => ("shard_chunk", method_not_allowed("POST")),
                    (_, None) => ("shard_chunk", not_found()),
                };
            }
            if let Some(id_text) = rest.strip_suffix("/shards") {
                let id = id_text.parse::<u64>().ok();
                return match (req.method.as_str(), id) {
                    ("GET", Some(id)) => ("sweep_shards", sweep_shards(state, id)),
                    (_, Some(_)) => ("sweep_shards", method_not_allowed("GET")),
                    (_, None) => ("sweep_shards", not_found()),
                };
            }
            let id = rest.parse::<u64>().ok();
            match (req.method.as_str(), id) {
                ("GET", Some(id)) => ("sweep_poll", sweep_poll(state, req, id)),
                ("DELETE", Some(id)) => ("sweep_cancel", sweep_cancel(state, id)),
                (_, Some(_)) => ("sweep_poll", method_not_allowed("GET, DELETE")),
                (_, None) => ("sweep_poll", not_found()),
            }
        }
        _ => ("unknown", not_found()),
    }
}

/// The endpoint label a request *will* resolve to, computable before the
/// handler runs — what feeds the in-flight gauge. Must stay aligned with the
/// labels [`route`] returns (method mismatches still land on the same label).
pub fn endpoint_hint(target: &str) -> &'static str {
    let path = target.split('?').next().unwrap_or("");
    match path {
        "/healthz" => "healthz",
        "/metrics" => "metrics",
        "/v1/trace/recent" => "trace_recent",
        "/v1/optimize" => "optimize",
        "/v1/batch" => "batch",
        "/v1/sweep" => "sweep_submit",
        "/v1/workers/register" => "worker_register",
        "/v1/workers" => "workers",
        "/v1/shards/run" => "shard_run",
        _ if path.starts_with("/v1/workers/") => "worker_heartbeat",
        _ if path.starts_with("/v1/sweep/") => {
            let rest = &path["/v1/sweep/".len()..];
            if rest.contains("/shards/") && rest.ends_with("/chunk") {
                "shard_chunk"
            } else if rest.ends_with("/shards") {
                "sweep_shards"
            } else {
                "sweep_poll"
            }
        }
        _ => "unknown",
    }
}

/// The value of query parameter `key` in a request target, if present.
fn query_param<'a>(target: &'a str, key: &str) -> Option<&'a str> {
    target.split_once('?')?.1.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

/// `GET /v1/trace/recent[?limit=N]`: the newest completed spans from the
/// in-process ring, oldest first — a debug window onto the tracing layer, no
/// sink required. Returns an empty list while tracing is disabled.
fn trace_recent(req: &Request) -> Response {
    let limit = req
        .target
        .split_once('?')
        .and_then(|(_, query)| {
            query
                .split('&')
                .find_map(|pair| pair.strip_prefix("limit="))
        })
        .map(str::parse::<usize>);
    let limit = match limit {
        None => 64,
        Some(Ok(limit)) => limit.min(ayd_obs::RING_CAPACITY.max(64)),
        Some(Err(_)) => return bad_request("limit must be a non-negative integer"),
    };
    let records = ayd_obs::recent(limit);
    // SpanRecord::to_json_line is already the canonical JSON rendering of one
    // span (stable field order); the endpoint just frames the lines.
    let mut body = String::with_capacity(64 + records.len() * 128);
    body.push_str("{\"count\":");
    body.push_str(&records.len().to_string());
    body.push_str(",\"spans\":[");
    for (i, record) in records.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&record.to_json_line());
    }
    body.push_str("]}");
    Response {
        status: 200,
        reason: "OK",
        content_type: "application/json",
        extra_headers: Vec::new(),
        body: body.into_bytes(),
    }
}

fn method_not_allowed(allow: &'static str) -> Response {
    Response::error(405, "Method Not Allowed", "method not allowed").with_header("allow", allow)
}

fn not_found() -> Response {
    Response::error(404, "Not Found", "no such route")
}

fn bad_request(message: &str) -> Response {
    Response::error(400, "Bad Request", message)
}

/// A structured bad-request error: the offending request field (when it can
/// be pinned down) plus a human-readable reason. Rendered as
/// `{"error": ..., "field": ..., "reason": ...}` with status 400, so clients
/// can surface validation failures per field instead of parsing prose.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiError {
    /// The request field at fault (`alpha`, `sigma`, `lambda_ind`, …), when known.
    pub field: Option<String>,
    /// Why the value was rejected.
    pub reason: String,
}

impl ApiError {
    /// An error attributed to one request field.
    pub fn field(field: impl Into<String>, reason: impl Into<String>) -> Self {
        Self {
            field: Some(field.into()),
            reason: reason.into(),
        }
    }

    /// An error with no single offending field.
    pub fn plain(reason: impl Into<String>) -> Self {
        Self {
            field: None,
            reason: reason.into(),
        }
    }

    /// Maps a model-construction error to the request field it came from: the
    /// model layer names its parameters (`alpha`, `sigma`, `lambda_ind`,
    /// `downtime`) exactly like the request schema does.
    pub fn from_model_error(error: ModelError) -> Self {
        let reason = error.to_string();
        match error {
            ModelError::NonPositive { name, .. }
            | ModelError::Negative { name, .. }
            | ModelError::NotAFraction { name, .. } => Self::field(name, reason),
            ModelError::InvalidProfileSpec { .. } => Self::field("profile", reason),
            ModelError::InvalidFailureSpec { .. } => Self::field("failure_model", reason),
            _ => Self::plain(reason),
        }
    }

    /// Prefixes the reason (used by `/v1/batch` to name the failing query).
    pub fn prefixed(mut self, prefix: &str) -> Self {
        self.reason = format!("{prefix}{}", self.reason);
        self
    }

    /// The structured 400 response.
    pub fn response(&self) -> Response {
        Response::json_status(
            400,
            "Bad Request",
            &Json::obj(vec![
                ("error", Json::str(self.reason.clone())),
                ("field", self.field.as_deref().map_or(Json::Null, Json::str)),
                ("reason", Json::str(self.reason.clone())),
            ]),
        )
    }
}

impl From<String> for ApiError {
    fn from(reason: String) -> Self {
        Self::plain(reason)
    }
}

fn parse_body(req: &Request) -> Result<Json, Response> {
    let text =
        std::str::from_utf8(&req.body).map_err(|_| bad_request("body is not valid UTF-8"))?;
    if text.trim().is_empty() {
        // An absent body behaves like an empty object: every field optional.
        return Ok(Json::Obj(Vec::new()));
    }
    Json::parse(text).map_err(|e| bad_request(&format!("invalid JSON: {e}")))
}

fn health(state: &Arc<AppState>) -> Response {
    Response::json(&Json::obj(vec![
        ("status", Json::str("ok")),
        (
            "uptime_seconds",
            Json::num(state.started.elapsed().as_secs_f64()),
        ),
        ("requests", Json::num(state.metrics.request_count() as f64)),
        ("cache_entries", Json::num(state.cache.len() as f64)),
        ("running_jobs", Json::num(state.jobs.running_count() as f64)),
    ]))
}

/// One validated optimize query: the experiment setup, its exact model and
/// the axis coordinates used for rendering.
pub struct OptimizeQuery {
    setup: ExperimentSetup,
    model: ExactModel,
    failure_model: FailureModelSpec,
    lambda_multiplier: f64,
    fixed_processors: Option<f64>,
    pattern_length: Option<f64>,
}

fn field_f64(body: &Json, key: &str) -> Result<Option<f64>, ApiError> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(value) => value
            .as_f64()
            .map(Some)
            .ok_or_else(|| ApiError::field(key, format!("field '{key}' must be a number"))),
    }
}

/// Parses a `profile` request value: either a canonical spec string
/// (`"powerlaw:0.8"`) or an object (`{"kind":"powerlaw","sigma":0.8}`,
/// `{"kind":"amdahl","alpha":0.1}`, `{"kind":"perfect"}`). Rendering a
/// response profile back through either form reproduces the parameter
/// bit-identically.
pub fn parse_profile(value: &Json) -> Result<SpeedupProfile, ApiError> {
    let spec = match value {
        Json::Str(spec) => {
            ProfileSpec::parse(spec).map_err(|e| ApiError::field("profile", e.to_string()))?
        }
        Json::Obj(_) => {
            let kind = value.get("kind").and_then(Json::as_str).ok_or_else(|| {
                ApiError::field("profile", "profile object needs a 'kind' string")
            })?;
            let alpha = field_f64(value, "alpha")?;
            let sigma = field_f64(value, "sigma")?;
            let param = match (alpha, sigma) {
                (Some(_), Some(_)) => {
                    return Err(ApiError::field(
                        "profile",
                        "specify at most one of 'alpha' and 'sigma' in a profile object",
                    ))
                }
                (param, None) | (None, param) => param,
            };
            // The parameter key must match the family's parameter name
            // (amdahl/gustafson take 'alpha', powerlaw takes 'sigma') — checked
            // before range validation, so a wrong key with an out-of-range
            // value reports the key mismatch, not a field the request never
            // contained.
            let given = if alpha.is_some() {
                Some("alpha")
            } else if sigma.is_some() {
                Some("sigma")
            } else {
                None
            };
            if let (Some(given), Some(expected)) = (given, ProfileSpec::param_name_for_kind(kind)) {
                if given != expected {
                    return Err(ApiError::field(
                        "profile",
                        format!("profile kind '{kind}' takes '{expected}', not '{given}'"),
                    ));
                }
            }
            ProfileSpec::from_kind_param(kind, param).map_err(ApiError::from_model_error)?
        }
        _ => {
            return Err(ApiError::field(
                "profile",
                "field 'profile' must be a spec string or an object",
            ))
        }
    };
    Ok(spec.profile())
}

/// Parses a `failure_model` request value: either a canonical spec string
/// (`"weibull:0.7"`, `"shifted:600,1e-7"`, `"trace:logs/a.trace"`) or an
/// object (`{"kind":"weibull","shape":0.7}`, `{"kind":"shifted","shift":600}`,
/// `{"kind":"trace","path":"logs/a.trace"}`, optionally with an explicit
/// `"lambda"` rate on the parametric families). Rendering a response model
/// back through either form reproduces the parameters bit-identically.
pub fn parse_failure_model(value: &Json) -> Result<FailureModelSpec, ApiError> {
    match value {
        Json::Str(spec) => FailureModelSpec::parse(spec)
            .map_err(|e| ApiError::field("failure_model", e.to_string())),
        Json::Obj(_) => {
            let kind = value.get("kind").and_then(Json::as_str).ok_or_else(|| {
                ApiError::field(
                    "failure_model",
                    "failure model object needs a 'kind' string",
                )
            })?;
            let shape = field_f64(value, "shape").map_err(remap_to_failure_model)?;
            let shift = field_f64(value, "shift").map_err(remap_to_failure_model)?;
            let param = match (shape, shift) {
                (Some(_), Some(_)) => {
                    return Err(ApiError::field(
                        "failure_model",
                        "specify at most one of 'shape' and 'shift' in a failure model object",
                    ))
                }
                (param, None) | (None, param) => param,
            };
            // Like profile objects: the parameter key must match the family
            // (weibull takes 'shape', shifted takes 'shift'), checked before
            // range validation.
            let given = if shape.is_some() {
                Some("shape")
            } else if shift.is_some() {
                Some("shift")
            } else {
                None
            };
            if let (Some(given), Some(expected)) =
                (given, FailureModelSpec::param_name_for_kind(kind))
            {
                if given != expected {
                    return Err(ApiError::field(
                        "failure_model",
                        format!("failure model kind '{kind}' takes '{expected}', not '{given}'"),
                    ));
                }
            }
            let path = match value.get("path") {
                None | Some(Json::Null) => None,
                Some(path) => Some(path.as_str().ok_or_else(|| {
                    ApiError::field("failure_model", "field 'path' must be a string")
                })?),
            };
            let spec = match (kind, path) {
                ("trace", Some(path)) => {
                    if param.is_some() {
                        return Err(ApiError::field(
                            "failure_model",
                            "trace models take a 'path', not 'shape'/'shift'",
                        ));
                    }
                    FailureModelSpec::trace(path).map_err(ApiError::from_model_error)?
                }
                ("trace", None) => {
                    return Err(ApiError::field(
                        "failure_model",
                        "failure model kind 'trace' needs a 'path' string",
                    ))
                }
                (_, Some(_)) => {
                    return Err(ApiError::field(
                        "failure_model",
                        format!("failure model kind '{kind}' takes no 'path'"),
                    ))
                }
                (_, None) => FailureModelSpec::from_kind_param(kind, param)
                    .map_err(ApiError::from_model_error)?,
            };
            match field_f64(value, "lambda").map_err(remap_to_failure_model)? {
                None => Ok(spec),
                Some(lambda) => spec.with_lambda(lambda).map_err(ApiError::from_model_error),
            }
        }
        _ => Err(ApiError::field(
            "failure_model",
            "field 'failure_model' must be a spec string or an object",
        )),
    }
}

/// Re-attributes a sub-field error (`shape`, `shift`, `lambda`) of a failure
/// model object to the enclosing `failure_model` request field.
fn remap_to_failure_model(mut error: ApiError) -> ApiError {
    error.field = Some("failure_model".to_string());
    error
}

/// Parses one optimize query. Defaults are the paper's: Hera, scenario 1,
/// Amdahl `α = 0.1`, `D = 3600 s`, the platform's measured error rate,
/// jointly optimised `P`. The speedup profile comes from either `alpha`
/// (Amdahl shorthand) or the generic `profile` field, never both.
pub fn parse_optimize(body: &Json) -> Result<OptimizeQuery, ApiError> {
    let platform = match body.get("platform") {
        None | Some(Json::Null) => PlatformId::Hera,
        Some(value) => {
            let name = value
                .as_str()
                .ok_or_else(|| ApiError::field("platform", "field 'platform' must be a string"))?;
            PlatformId::parse(name)
                .ok_or_else(|| ApiError::field("platform", format!("unknown platform '{name}'")))?
        }
    };
    let scenario = match field_f64(body, "scenario")? {
        None => ScenarioId::S1,
        Some(number) => ScenarioId::from_number(number as usize)
            .filter(|_| number.fract() == 0.0)
            .ok_or_else(|| {
                ApiError::field(
                    "scenario",
                    format!("scenario must be an integer in 1..=6, got {number}"),
                )
            })?,
    };
    let mut setup = ExperimentSetup::paper_default(platform, scenario);
    let alpha = field_f64(body, "alpha")?;
    let profile = match body.get("profile") {
        None | Some(Json::Null) => None,
        Some(value) => Some(parse_profile(value)?),
    };
    match (alpha, profile) {
        (Some(_), Some(_)) => {
            return Err(ApiError::field(
                "profile",
                "specify at most one of 'alpha' and 'profile'",
            ))
        }
        (Some(alpha), None) => setup = setup.with_alpha(alpha),
        (None, Some(profile)) => setup = setup.with_profile(profile),
        (None, None) => {}
    }
    if let Some(downtime) = field_f64(body, "downtime")? {
        setup = setup.with_downtime(downtime);
    }
    let failure_model = match body.get("failure_model") {
        None | Some(Json::Null) => FailureModelSpec::exponential(),
        Some(value) => parse_failure_model(value)?,
    };
    let measured_lambda = Platform::get(platform).lambda_ind;
    let lambda_ind = field_f64(body, "lambda_ind")?;
    let lambda_multiplier = field_f64(body, "lambda_multiplier")?;
    if failure_model.lambda().is_some() && (lambda_ind.is_some() || lambda_multiplier.is_some()) {
        return Err(ApiError::field(
            "failure_model",
            "the failure model pins an explicit rate; specify the rate once \
             (drop 'lambda_ind'/'lambda_multiplier', or the model's rate)",
        ));
    }
    // A rate pinned in the failure model spec behaves exactly like
    // 'lambda_ind'; the spec itself is stored rate-free (the row's
    // lambda_ind column carries the rate, as in sweep grids).
    let lambda_ind = lambda_ind.or(failure_model.lambda());
    let failure_model = failure_model.without_lambda();
    let multiplier = match (lambda_ind, lambda_multiplier) {
        (Some(_), Some(_)) => {
            return Err(ApiError::field(
                "lambda_ind",
                "specify at most one of 'lambda_ind' and 'lambda_multiplier'",
            ))
        }
        (Some(lambda), None) => {
            setup = setup.with_lambda_ind(lambda);
            lambda / measured_lambda
        }
        (None, Some(multiplier)) => {
            setup = setup.with_lambda_ind(measured_lambda * multiplier);
            multiplier
        }
        (None, None) => 1.0,
    };
    let fixed_processors = field_f64(body, "processors")?;
    if fixed_processors.is_some_and(|p| !p.is_finite() || p <= 0.0) {
        return Err(ApiError::field(
            "processors",
            "'processors' must be positive and finite",
        ));
    }
    let pattern_length = field_f64(body, "pattern_length")?;
    if pattern_length.is_some() && fixed_processors.is_none() {
        return Err(ApiError::field(
            "pattern_length",
            "'pattern_length' requires a fixed 'processors'",
        ));
    }
    if pattern_length.is_some_and(|t| !t.is_finite() || t <= 0.0) {
        return Err(ApiError::field(
            "pattern_length",
            "'pattern_length' must be positive and finite",
        ));
    }
    let model = setup.model().map_err(ApiError::from_model_error)?;
    Ok(OptimizeQuery {
        setup,
        model,
        failure_model,
        lambda_multiplier: multiplier,
        fixed_processors,
        pattern_length,
    })
}

/// Evaluates a query against the process-wide cache, producing the same
/// [`SweepRow`] an offline sweep over the equivalent one-cell grid would.
/// Cold (cache-miss) evaluations feed `ayd_optimize_cold_seconds`, warm ones
/// `ayd_optimize_warm_seconds`; both feed the search counters and the
/// per-request `evaluate` span.
pub fn evaluate_query(state: &AppState, query: &OptimizeQuery) -> SweepRow {
    let mut span = ayd_obs::span("evaluate");
    let started = Instant::now();
    let (analytic, observation) = evaluate_analytic_observed(
        &query.model,
        query.fixed_processors,
        &query.failure_model,
        &state.options,
        Some(&state.cache),
    );
    if observation.computed {
        state.metrics.observe_cold(started.elapsed());
    } else {
        state.metrics.observe_warm(started.elapsed());
    }
    state.metrics.observe_search(observation.search);
    if span.is_recording() {
        span.field_bool("cold", observation.computed);
        span.field_u64("search_fast", observation.search.fast);
        span.field_u64("search_fallback", observation.search.fallback);
        span.field_u64("brent_iterations", observation.search.brent_iterations);
        for reason in ayd_sweep::FallbackReason::ALL {
            let count = observation.search.fallback_count(reason);
            if count > 0 {
                span.field_str("fallback_reason", reason.as_str());
            }
        }
    }
    span.finish();
    query_row(query, analytic)
}

/// Assembles the [`SweepRow`] of one already-evaluated query.
fn query_row(query: &OptimizeQuery, analytic: AnalyticEval) -> SweepRow {
    let prescribed = match (query.fixed_processors, query.pattern_length) {
        (Some(p), Some(t)) => Some(OperatingPoint {
            processors: p,
            period: t,
            predicted_overhead: query.model.expected_overhead(t, p),
            formula_overhead: None,
            simulated: None,
        }),
        _ => None,
    };
    SweepRow {
        platform: query.setup.platform,
        scenario: query.setup.scenario.number(),
        profile: query.setup.profile,
        failure_model: query.failure_model.clone(),
        alpha: query.setup.alpha(),
        lambda_ind: query.model.failures.lambda_ind,
        lambda_multiplier: query.lambda_multiplier,
        fixed_processors: query.fixed_processors,
        processor_order: None,
        pattern_length: query.pattern_length,
        first_order: analytic.first_order,
        closed_form: analytic.closed_form,
        numerical: analytic.numerical,
        prescribed,
        stream_simulated: None,
    }
}

fn point_json(point: &OperatingPoint) -> Json {
    Json::obj(vec![
        ("processors", Json::num(point.processors)),
        ("period", Json::num(point.period)),
        ("overhead", Json::num(point.predicted_overhead)),
        ("formula_overhead", Json::opt_num(point.formula_overhead)),
    ])
}

/// Renders a speedup profile as its response JSON object: the family `kind`,
/// the canonical `spec` string, and the parameter under its proper name
/// (`alpha` or `sigma`). Numbers render with shortest-roundtrip formatting,
/// so feeding the object (or the spec string) back as a request `profile`
/// reproduces the profile bit-identically.
pub fn profile_json(profile: SpeedupProfile) -> Json {
    let spec = ProfileSpec::from(profile);
    let mut fields = vec![
        ("kind", Json::str(spec.kind())),
        ("spec", Json::str(spec.to_string())),
    ];
    if let (Some(name), Some(value)) = (spec.param_name(), spec.param()) {
        fields.push((name, Json::num(value)));
    }
    Json::obj(fields)
}

/// Renders a failure model as its response JSON object: the family `kind`,
/// the canonical `spec` string, and the parameter under its proper name
/// (`shape` or `shift`); trace models carry their `path`. Feeding the object
/// (or the spec string) back as a request `failure_model` reproduces the
/// model bit-identically.
pub fn failure_model_json(spec: &FailureModelSpec) -> Json {
    let mut fields = vec![
        ("kind", Json::str(spec.kind())),
        ("spec", Json::str(spec.to_string())),
    ];
    if let (Some(name), Some(value)) = (spec.param_name(), spec.param()) {
        fields.push((name, Json::num(value)));
    }
    if let Some(path) = spec.trace_path() {
        fields.push(("path", Json::str(path)));
    }
    Json::obj(fields)
}

/// Renders one evaluated row as the `/v1/optimize` JSON document.
pub fn row_json(row: &SweepRow) -> Json {
    Json::obj(vec![
        ("platform", Json::str(row.platform.name())),
        ("scenario", Json::num(row.scenario as f64)),
        ("profile", profile_json(row.profile)),
        ("failure_model", failure_model_json(&row.failure_model)),
        ("alpha", Json::opt_num(row.alpha)),
        ("lambda_ind", Json::num(row.lambda_ind)),
        ("lambda_multiplier", Json::num(row.lambda_multiplier)),
        ("processors", Json::opt_num(row.fixed_processors)),
        ("pattern_length", Json::opt_num(row.pattern_length)),
        (
            "first_order",
            row.first_order.as_ref().map_or(Json::Null, point_json),
        ),
        (
            "closed_form",
            row.closed_form.map_or(Json::Null, |cf| {
                Json::obj(vec![
                    ("processors", Json::num(cf.processors)),
                    ("period", Json::num(cf.period)),
                    ("overhead", Json::num(cf.overhead)),
                ])
            }),
        ),
        ("numerical", point_json(&row.numerical)),
        (
            "prescribed",
            row.prescribed.as_ref().map_or(Json::Null, point_json),
        ),
    ])
}

/// Renders rows as the canonical sweep CSV (header + one line per row).
pub fn rows_csv(rows: &[SweepRow]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for row in rows {
        out.push_str(&ayd_sweep::csv_line(row));
        out.push('\n');
    }
    out
}

fn optimize(state: &Arc<AppState>, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(body) => body,
        Err(response) => return response,
    };
    let query = match parse_optimize(&body) {
        Ok(query) => query,
        Err(error) => return error.response(),
    };
    let row = evaluate_query(state, &query);
    if req.accepts("text/csv") {
        Response::csv(rows_csv(std::slice::from_ref(&row)))
    } else {
        Response::json(&row_json(&row))
    }
}

fn batch(state: &Arc<AppState>, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(body) => body,
        Err(response) => return response,
    };
    let queries = match body.get("queries").and_then(Json::as_array) {
        Some(queries) => queries,
        None => return bad_request("body must be {\"queries\": [...]}"),
    };
    if queries.len() > MAX_BATCH {
        return bad_request(&format!("at most {MAX_BATCH} queries per batch"));
    }
    let mut parsed = Vec::with_capacity(queries.len());
    for (index, query) in queries.iter().enumerate() {
        match parse_optimize(query) {
            Ok(query) => parsed.push(query),
            Err(error) => return error.prefixed(&format!("query {index}: ")).response(),
        }
    }
    // Fan the evaluations out over the compute pool (not the connection
    // pool) in small chunks — each chunk goes through `evaluate_many`, which
    // builds the optimiser context once per chunk — then reassemble in query
    // order.
    const BATCH_CHUNK: usize = 8;
    let mut chunks: Vec<Vec<OptimizeQuery>> = Vec::new();
    let mut parsed = parsed.into_iter();
    loop {
        let chunk: Vec<OptimizeQuery> = parsed.by_ref().take(BATCH_CHUNK).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let worker_state = Arc::clone(state);
    let rows: Vec<SweepRow> = state
        .compute
        .run_batch(chunks, move |chunk| {
            let queries: Vec<(ExactModel, Option<f64>, FailureModelSpec)> = chunk
                .iter()
                .map(|query| {
                    (
                        query.model,
                        query.fixed_processors,
                        query.failure_model.clone(),
                    )
                })
                .collect();
            let (evals, search) =
                evaluate_many(&queries, &worker_state.options, Some(&worker_state.cache));
            worker_state.metrics.observe_search(search);
            chunk
                .iter()
                .zip(evals)
                .map(|(query, eval)| query_row(query, eval))
                .collect::<Vec<SweepRow>>()
        })
        .into_iter()
        .flatten()
        .collect();
    if req.accepts("text/csv") {
        Response::csv(rows_csv(&rows))
    } else {
        Response::json(&Json::obj(vec![
            ("count", Json::num(rows.len() as f64)),
            ("results", Json::Arr(rows.iter().map(row_json).collect())),
        ]))
    }
}

fn f64_list(body: &Json, key: &str) -> Result<Option<Vec<f64>>, ApiError> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(value) => {
            let bad = || ApiError::field(key, format!("field '{key}' must be an array of numbers"));
            let items = value.as_array().ok_or_else(bad)?;
            items
                .iter()
                .map(|item| item.as_f64().ok_or_else(bad))
                .collect::<Result<Vec<f64>, ApiError>>()
                .map(Some)
        }
    }
}

/// Builds a [`ScenarioGrid`] from a `/v1/sweep` body. Absent fields fall back
/// to the grid builder's defaults (Hera, representative scenarios, Amdahl
/// `α = 0.1`, measured rates, jointly optimised `P`). The application axis is
/// either `alphas` (Amdahl shorthand) or the generic `profiles` array (spec
/// strings or profile objects), never both.
pub fn parse_grid(body: &Json) -> Result<ScenarioGrid, ApiError> {
    let mut builder = ScenarioGrid::builder();
    if let Some(platforms) = body.get("platforms") {
        let bad = || {
            ApiError::field(
                "platforms",
                "field 'platforms' must be an array of platform names",
            )
        };
        let names = platforms.as_array().ok_or_else(bad)?;
        let mut ids = Vec::with_capacity(names.len());
        for name in names {
            let name = name.as_str().ok_or_else(bad)?;
            ids.push(PlatformId::parse(name).ok_or_else(|| {
                ApiError::field("platforms", format!("unknown platform '{name}'"))
            })?);
        }
        builder = builder.platforms(&ids);
    }
    if let Some(numbers) = f64_list(body, "scenarios")? {
        let mut ids = Vec::with_capacity(numbers.len());
        for number in numbers {
            ids.push(
                ScenarioId::from_number(number as usize)
                    .filter(|_| number.fract() == 0.0)
                    .ok_or_else(|| {
                        ApiError::field(
                            "scenarios",
                            format!("scenario must be an integer in 1..=6, got {number}"),
                        )
                    })?,
            );
        }
        builder = builder.scenarios(&ids);
    }
    let alphas = f64_list(body, "alphas")?;
    let profiles = match body.get("profiles") {
        None | Some(Json::Null) => None,
        Some(value) => {
            let items = value.as_array().ok_or_else(|| {
                ApiError::field(
                    "profiles",
                    "field 'profiles' must be an array of profile specs or objects",
                )
            })?;
            let mut parsed = Vec::with_capacity(items.len());
            for item in items {
                // parse_profile attributes errors to the optimize schema's
                // 'profile' field; in a sweep body the field is 'profiles'.
                parsed.push(parse_profile(item).map_err(|mut e| {
                    if e.field.as_deref() == Some("profile") {
                        e.field = Some("profiles".to_string());
                    }
                    e
                })?);
            }
            Some(parsed)
        }
    };
    match (alphas, profiles) {
        (Some(_), Some(_)) => {
            return Err(ApiError::field(
                "profiles",
                "specify at most one of 'alphas' and 'profiles'",
            ))
        }
        (Some(alphas), None) => {
            // Validate the model parameters eagerly so an out-of-range alpha
            // is attributed to the 'alphas' field rather than surfacing as a
            // fieldless grid-builder error.
            for &alpha in &alphas {
                SpeedupProfile::Amdahl { alpha }
                    .validate()
                    .map_err(|e| ApiError::field("alphas", e.to_string()))?;
            }
            builder = builder.alphas(&alphas);
        }
        (None, Some(profiles)) => builder = builder.profiles(&profiles),
        (None, None) => {}
    }
    match body.get("failure_models") {
        None | Some(Json::Null) => {}
        Some(value) => {
            let items = value.as_array().ok_or_else(|| {
                ApiError::field(
                    "failure_models",
                    "field 'failure_models' must be an array of failure model specs or objects",
                )
            })?;
            let mut parsed = Vec::with_capacity(items.len());
            for item in items {
                // parse_failure_model attributes errors to the optimize
                // schema's 'failure_model' field; here the field is plural.
                let spec = parse_failure_model(item).map_err(|mut e| {
                    if e.field.as_deref() == Some("failure_model") {
                        e.field = Some("failure_models".to_string());
                    }
                    e
                })?;
                if spec.lambda().is_some() {
                    return Err(ApiError::field(
                        "failure_models",
                        "a sweep failure model must not pin an explicit rate; \
                         grid cells take their rate from the lambda axis",
                    ));
                }
                parsed.push(spec);
            }
            builder = builder.failure_models(&parsed);
        }
    }
    let multipliers = f64_list(body, "lambda_multipliers")?;
    let values = f64_list(body, "lambda_values")?;
    match (multipliers, values) {
        (Some(_), Some(_)) => {
            return Err(ApiError::field(
                "lambda_multipliers",
                "specify at most one of 'lambda_multipliers' and 'lambda_values'",
            ))
        }
        (Some(multipliers), None) => builder = builder.lambda_multipliers(&multipliers),
        (None, Some(values)) => builder = builder.lambda_values(&values),
        (None, None) => {}
    }
    let processors = f64_list(body, "processors")?;
    let orders = f64_list(body, "lambda_orders")?;
    match (processors, orders) {
        (Some(_), Some(_)) => {
            return Err(ApiError::field(
                "processors",
                "specify at most one of 'processors' and 'lambda_orders'",
            ))
        }
        (Some(processors), None) => builder = builder.processors(ProcessorAxis::Fixed(processors)),
        (None, Some(orders)) => builder = builder.processors(ProcessorAxis::LambdaOrders(orders)),
        (None, None) => {}
    }
    if let Some(lengths) = f64_list(body, "pattern_lengths")? {
        builder = builder.pattern_lengths(&lengths);
    }
    if let Some(downtime) = field_f64(body, "downtime")? {
        builder = builder.downtime(downtime);
    }
    builder.build().map_err(|e| ApiError::plain(e.to_string()))
}

/// The opaque resume token of a sharded job: the job id plus the grid and
/// options fingerprints, so a resumed submission can be validated against
/// the exact sweep the token came from.
fn resume_token(id: u64, grid_fingerprint: u64, options_fingerprint: u64) -> String {
    format!("{id}-{grid_fingerprint:016x}{options_fingerprint:016x}")
}

fn parse_resume_token(token: &str) -> Result<(u64, u64, u64), ApiError> {
    let bad = || {
        ApiError::field(
            "resume_token",
            "resume_token must be a token returned by a sharded sweep submission",
        )
    };
    let (id, prints) = token.split_once('-').ok_or_else(bad)?;
    if prints.len() != 32 {
        return Err(bad());
    }
    Ok((
        id.parse().map_err(|_| bad())?,
        u64::from_str_radix(&prints[..16], 16).map_err(|_| bad())?,
        u64::from_str_radix(&prints[16..], 16).map_err(|_| bad())?,
    ))
}

/// Parses the sharding fields of a `/v1/sweep` body: the optional shard
/// count and the optional resume token of an earlier cancelled sharded job.
fn parse_shards(body: &Json) -> Result<(Option<usize>, Option<&str>), ApiError> {
    let shards = match field_f64(body, "shards")? {
        None => None,
        Some(count) => {
            let max = ayd_sweep::MAX_SHARDS as f64;
            if count.fract() != 0.0 || count < 1.0 || count > max {
                return Err(ApiError::field(
                    "shards",
                    format!("shards must be an integer in 1..={max}, got {count}"),
                ));
            }
            Some(count as usize)
        }
    };
    let token = match body.get("resume_token") {
        None | Some(Json::Null) => None,
        Some(value) => Some(value.as_str().ok_or_else(|| {
            ApiError::field("resume_token", "field 'resume_token' must be a string")
        })?),
    };
    Ok((shards, token))
}

/// `POST /v1/workers/register` (coordinator only): registers a worker node
/// and returns its identity, lease and heartbeat cadence. The token is a
/// 16-hex-digit string (u64 values do not survive a JSON f64 round trip).
fn worker_register(state: &Arc<AppState>, req: &Request) -> Response {
    let Some(coordinator) = &state.coordinator else {
        return bad_request("this server is not running in coordinator mode");
    };
    let body = match parse_body(req) {
        Ok(body) => body,
        Err(response) => return response,
    };
    let Some(addr) = body.get("addr").and_then(Json::as_str) else {
        return ApiError::field("addr", "field 'addr' must be the worker's host:port string")
            .response();
    };
    let (id, token) = coordinator.register_worker(addr, Instant::now());
    let lease = coordinator.lease();
    Response::json(&Json::obj(vec![
        ("id", Json::num(id as f64)),
        ("token", Json::str(format!("{token:016x}"))),
        ("lease_ms", Json::num(lease.as_millis() as f64)),
        ("heartbeat_ms", Json::num((lease / 3).as_millis() as f64)),
    ]))
}

/// `POST /v1/workers/{id}/heartbeat` (coordinator only): renews a worker's
/// lease. `404` tells the worker its registration is gone — re-register.
fn worker_heartbeat(state: &Arc<AppState>, req: &Request, id: u64) -> Response {
    let Some(coordinator) = &state.coordinator else {
        return bad_request("this server is not running in coordinator mode");
    };
    let body = match parse_body(req) {
        Ok(body) => body,
        Err(response) => return response,
    };
    let token = body
        .get("token")
        .and_then(Json::as_str)
        .and_then(|t| u64::from_str_radix(t, 16).ok());
    let Some(token) = token else {
        return ApiError::field(
            "token",
            "field 'token' must be the registration's hex token",
        )
        .response();
    };
    match coordinator.heartbeat(id, token, Instant::now()) {
        Ok(()) => Response::json(&Json::obj(vec![
            ("id", Json::num(id as f64)),
            ("status", Json::str("alive")),
        ])),
        Err(reason) => Response::error(404, "Not Found", &reason),
    }
}

/// `GET /v1/workers` (coordinator only): the operator view of every
/// registered worker — liveness, heartbeat age and current assignment.
fn workers_list(state: &Arc<AppState>) -> Response {
    let Some(coordinator) = &state.coordinator else {
        return bad_request("this server is not running in coordinator mode");
    };
    let now = Instant::now();
    let stats = coordinator.stats(now);
    let workers = coordinator
        .workers_view(now)
        .into_iter()
        .map(|view| {
            let assignment = match view.assignment {
                None => Json::Null,
                Some((job, shard, epoch)) => Json::obj(vec![
                    ("job", Json::num(job as f64)),
                    ("shard", Json::num(shard as f64)),
                    ("epoch", Json::num(epoch as f64)),
                ]),
            };
            Json::obj(vec![
                ("id", Json::num(view.id as f64)),
                ("addr", Json::str(view.addr)),
                ("state", Json::str(view.state)),
                ("age_ms", Json::num(view.age_ms as f64)),
                ("assignment", assignment),
            ])
        })
        .collect();
    Response::json(&Json::obj(vec![
        ("workers", Json::Arr(workers)),
        ("alive", Json::num(stats.workers_alive as f64)),
        ("suspect", Json::num(stats.workers_suspect as f64)),
        ("dead", Json::num(stats.workers_dead as f64)),
    ]))
}

/// `POST /v1/sweep/{job}/shards/{index}/chunk?worker=ID&token=HEX&epoch=N`
/// (coordinator only): a worker uploading one run of shard rows. The body is
/// the [`ayd_sweep::ShardChunk`] wire text; a chunk that fails structural
/// validation (torn row, tampered counts) is a `400` and never touches the
/// checkpoint.
fn shard_chunk(state: &Arc<AppState>, req: &Request, job: u64, index: usize) -> Response {
    let Some(coordinator) = &state.coordinator else {
        return bad_request("this server is not running in coordinator mode");
    };
    let worker = query_param(&req.target, "worker").and_then(|v| v.parse::<u64>().ok());
    let token = query_param(&req.target, "token").and_then(|v| u64::from_str_radix(v, 16).ok());
    let epoch = query_param(&req.target, "epoch").and_then(|v| v.parse::<u64>().ok());
    let (Some(worker), Some(token), Some(epoch)) = (worker, token, epoch) else {
        return bad_request("chunk uploads require worker, token and epoch query parameters");
    };
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return bad_request("chunk body must be UTF-8 wire text");
    };
    let chunk = match ayd_sweep::ShardChunk::parse(text) {
        Ok(chunk) => chunk,
        Err(err) => return bad_request(&format!("malformed shard chunk: {err}")),
    };
    match coordinator.accept_chunk(job, index, worker, token, epoch, &chunk, Instant::now()) {
        Ok(outcome) => Response::json(&Json::obj(vec![
            ("accepted", Json::num(outcome.accepted_rows as f64)),
            ("shard_done", Json::Bool(outcome.shard_done)),
            ("job_done", Json::Bool(outcome.job_done)),
        ])),
        Err(error) => {
            let (status, reason) = error.status();
            Response::error(status, reason, error.reason())
        }
    }
}

/// `POST /v1/shards/run` (worker only): the coordinator dispatching a shard
/// to this node. `202` acknowledges that the shard started computing.
fn shard_run(state: &Arc<AppState>, req: &Request) -> Response {
    let Some(worker) = &state.worker else {
        return bad_request("this server is not running in worker mode");
    };
    let body = match parse_body(req) {
        Ok(body) => body,
        Err(response) => return response,
    };
    let num = |key: &str| body.get(key).and_then(Json::as_f64);
    let hex = |key: &str| {
        body.get(key)
            .and_then(Json::as_str)
            .and_then(|v| u64::from_str_radix(v, 16).ok())
    };
    let parsed = (
        num("job"),
        num("shard"),
        num("count"),
        num("epoch"),
        num("start_row"),
        num("worker"),
        hex("grid_fingerprint"),
        hex("options_fingerprint"),
    );
    let (
        Some(job),
        Some(shard),
        Some(count),
        Some(epoch),
        Some(start_row),
        Some(worker_id),
        Some(grid_fingerprint),
        Some(options_fingerprint),
    ) = parsed
    else {
        return bad_request(
            "dispatch requires job, shard, count, epoch, start_row, worker and both fingerprints",
        );
    };
    let Some(grid_body) = body.get("grid") else {
        return bad_request("dispatch is missing the grid document");
    };
    let grid = match parse_grid(grid_body) {
        Ok(grid) => grid,
        Err(error) => return error.prefixed("grid: ").response(),
    };
    let run = crate::worker::ShardRun {
        job: job as u64,
        shard: shard as usize,
        count: count as usize,
        epoch: epoch as u64,
        start_row: start_row as usize,
        worker: worker_id as u64,
        grid_fingerprint,
        options_fingerprint,
    };
    match worker.start_shard(state.options, grid, run) {
        Ok(()) => Response::json_status(
            202,
            "Accepted",
            &Json::obj(vec![
                ("status", Json::str("started")),
                ("job", Json::num(job)),
                ("shard", Json::num(shard)),
            ]),
        ),
        Err(error) => {
            let (status, reason) = error.status();
            Response::error(status, reason, error.reason())
        }
    }
}

fn sweep_submit(state: &Arc<AppState>, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(body) => body,
        Err(response) => return response,
    };
    let grid = match parse_grid(&body) {
        Ok(grid) => grid,
        Err(error) => return error.response(),
    };
    if grid.len() > state.max_sweep_cells {
        return bad_request(&format!(
            "grid has {} cells; this server accepts at most {}",
            grid.len(),
            state.max_sweep_cells
        ));
    }
    let (shards, token) = match parse_shards(&body) {
        Ok(parsed) => parsed,
        Err(error) => return error.response(),
    };
    // Coordinator mode: a sharded submission becomes a distributed job whose
    // shards are dispatched to registered workers. Resume tokens are a
    // single-process concept — here the coordinator's own checkpoints drive
    // re-issue, so a token is a caller error, not something to silently drop.
    if let Some(coordinator) = &state.coordinator {
        if token.is_some() {
            return ApiError::field(
                "resume_token",
                "coordinator mode does not support resume tokens; \
                 shards re-issue from worker checkpoints automatically",
            )
            .response();
        }
        if let Some(count) = shards {
            let grid_fingerprint = grid.fingerprint();
            let options_fingerprint = state.options.output_fingerprint();
            let grid_json = body.render();
            let grid_cells = grid.len();
            let Some(id) = state.jobs.try_submit(state.max_jobs, |id| {
                coordinator.submit(
                    id,
                    grid_json,
                    grid_fingerprint,
                    options_fingerprint,
                    count,
                    grid_cells,
                );
                crate::app::JobHandle::Distributed(crate::app::DistributedJobHandle {
                    coordinator: Arc::clone(coordinator),
                    id,
                })
            }) else {
                return Response::error(
                    503,
                    "Service Unavailable",
                    "too many sweeps running; retry later",
                );
            };
            return Response::json_status(
                202,
                "Accepted",
                &Json::obj(vec![
                    ("id", Json::num(id as f64)),
                    ("status", Json::str("running")),
                    ("cells", Json::num(grid_cells as f64)),
                    ("shards", Json::num(count as f64)),
                    ("resume_token", Json::Null),
                    ("href", Json::str(format!("/v1/sweep/{id}"))),
                    ("shards_href", Json::str(format!("/v1/sweep/{id}/shards"))),
                ]),
            );
        }
        // No `shards` requested: the coordinator still serves plain
        // in-process sweeps like any other node.
    }
    // A resume token implies a sharded job; its shard count defaults to the
    // cancelled job's (an explicit mismatching `shards` is rejected below).
    let sharded = shards.is_some() || token.is_some();
    if !sharded {
        let Some(id) = state.jobs.try_submit(state.max_jobs, |_| {
            crate::app::JobHandle::Plain(SweepExecutor::new(state.options).spawn(&grid))
        }) else {
            return Response::error(
                503,
                "Service Unavailable",
                "too many sweeps running; retry later",
            );
        };
        return Response::json_status(
            202,
            "Accepted",
            &Json::obj(vec![
                ("id", Json::num(id as f64)),
                ("status", Json::str("running")),
                ("cells", Json::num(grid.len() as f64)),
                ("shards", Json::Null),
                ("resume_token", Json::Null),
                ("href", Json::str(format!("/v1/sweep/{id}"))),
            ]),
        );
    }

    let grid_fingerprint = grid.fingerprint();
    let options_fingerprint = state.options.output_fingerprint();
    let resumed = match token {
        None => None,
        Some(token) => {
            let (old_id, old_grid, old_options) = match parse_resume_token(token) {
                Ok(parsed) => parsed,
                Err(error) => return error.response(),
            };
            if old_grid != grid_fingerprint || old_options != options_fingerprint {
                return ApiError::field(
                    "resume_token",
                    "resume_token belongs to a different grid or server configuration",
                )
                .response();
            }
            // One atomic lookup validates the token and (when the body gave
            // no explicit `shards`) adopts the cancelled job's shard count.
            match state
                .jobs
                .resume_rows(old_id, grid_fingerprint, options_fingerprint, shards)
            {
                Ok((count, rows)) => Some((count, rows)),
                Err(reason) => return ApiError::field("resume_token", reason).response(),
            }
        }
    };
    let (count, resumed_rows) = match resumed {
        Some((count, rows)) => (count, rows),
        None => match shards {
            Some(count) => (count, vec![None; count]),
            // Unreachable while the plain-job early return above holds, but a
            // logic slip here must answer 500, not panic the worker.
            None => {
                return Response::error(
                    500,
                    "Internal Server Error",
                    "sweep submission lost its shard count",
                )
            }
        },
    };
    let Some(id) = state.jobs.try_submit(state.max_jobs, |_| {
        crate::app::JobHandle::Sharded(crate::app::spawn_sharded(
            state.options,
            &grid,
            count,
            resumed_rows,
            grid_fingerprint,
            options_fingerprint,
        ))
    }) else {
        return Response::error(
            503,
            "Service Unavailable",
            "too many sweeps running; retry later",
        );
    };
    Response::json_status(
        202,
        "Accepted",
        &Json::obj(vec![
            ("id", Json::num(id as f64)),
            ("status", Json::str("running")),
            ("cells", Json::num(grid.len() as f64)),
            ("shards", Json::num(count as f64)),
            (
                "resume_token",
                Json::str(resume_token(id, grid_fingerprint, options_fingerprint)),
            ),
            ("href", Json::str(format!("/v1/sweep/{id}"))),
            ("shards_href", Json::str(format!("/v1/sweep/{id}/shards"))),
        ]),
    )
}

/// `GET /v1/sweep/{id}/shards`: per-shard progress of a sharded job. On a
/// coordinator the distributed view is richer — which worker owns each
/// shard, its fencing epoch and how often it re-issued — so it is consulted
/// first; plain and locally-sharded jobs fall back to the registry view.
fn sweep_shards(state: &Arc<AppState>, id: u64) -> Response {
    if let Some(coordinator) = &state.coordinator {
        if let Some(view) = coordinator.shards_view(id) {
            let progress = view
                .shards
                .iter()
                .map(|shard| {
                    Json::obj(vec![
                        ("index", Json::num(shard.index as f64)),
                        ("total", Json::num(shard.total as f64)),
                        ("completed", Json::num(shard.completed as f64)),
                        ("status", Json::str(shard.status)),
                        (
                            "worker",
                            shard.worker.map_or(Json::Null, |w| Json::num(w as f64)),
                        ),
                        (
                            "worker_addr",
                            shard.worker_addr.as_deref().map_or(Json::Null, Json::str),
                        ),
                        ("epoch", Json::num(shard.epoch as f64)),
                        ("reissues", Json::num(shard.reissues as f64)),
                    ])
                })
                .collect();
            return Response::json(&Json::obj(vec![
                ("id", Json::num(id as f64)),
                ("shards", Json::num(view.shards.len() as f64)),
                ("merged_rows", Json::num(view.merged_rows as f64)),
                ("total", Json::num(view.total as f64)),
                ("cancelled", Json::Bool(view.cancelled)),
                ("progress", Json::Arr(progress)),
            ]));
        }
    }
    match state.jobs.shards_view(id) {
        None => Response::error(404, "Not Found", "no such sweep job"),
        Some(None) => bad_request("sweep job was not submitted with shards"),
        Some(Some(views)) => Response::json(&Json::obj(vec![
            ("id", Json::num(id as f64)),
            ("shards", Json::num(views.len() as f64)),
            (
                "progress",
                Json::Arr(
                    views
                        .iter()
                        .map(|view| {
                            Json::obj(vec![
                                ("index", Json::num(view.index as f64)),
                                ("total", Json::num(view.total as f64)),
                                ("completed", Json::num(view.completed as f64)),
                                ("status", Json::str(view.status)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])),
    }
}

fn sweep_poll(state: &Arc<AppState>, req: &Request, id: u64) -> Response {
    match state.jobs.poll(id) {
        None => Response::error(404, "Not Found", "no such sweep job"),
        Some(JobView::Running(completed, total)) => Response::json(&Json::obj(vec![
            ("id", Json::num(id as f64)),
            ("status", Json::str("running")),
            ("completed", Json::num(completed as f64)),
            ("total", Json::num(total as f64)),
        ])),
        Some(JobView::Finished(done)) => {
            // Finished jobs stream the canonical CSV by default; clients that
            // ask for JSON get the status document instead.
            if req.accepts("application/json") {
                Response::json(&Json::obj(vec![
                    ("id", Json::num(id as f64)),
                    (
                        "status",
                        Json::str(if done.cancelled { "cancelled" } else { "done" }),
                    ),
                    ("rows", Json::num(done.rows as f64)),
                    ("cache_hits", Json::num(done.cache.hits as f64)),
                    ("cache_misses", Json::num(done.cache.misses as f64)),
                    ("cache_hit_rate", Json::num(done.cache.hit_rate())),
                ]))
            } else {
                Response::csv(done.csv.clone())
            }
        }
    }
}

fn sweep_cancel(state: &Arc<AppState>, id: u64) -> Response {
    match state.jobs.cancel(id) {
        None => Response::error(404, "Not Found", "no such sweep job"),
        Some(cancelled) => Response::json(&Json::obj(vec![
            ("id", Json::num(id as f64)),
            (
                "status",
                Json::str(if cancelled { "cancelling" } else { "finished" }),
            ),
        ])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::ServerConfig;
    use ayd_sweep::{Evaluator, RunOptions, SweepOptions};

    fn state() -> Arc<AppState> {
        AppState::new(&ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        })
    }

    fn post(target: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            target: target.to_string(),
            http1_0: false,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(target: &str) -> Request {
        Request {
            method: "GET".to_string(),
            target: target.to_string(),
            http1_0: false,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    #[test]
    fn optimize_is_bit_identical_to_the_offline_evaluator() {
        let state = state();
        let req = post("/v1/optimize", r#"{"platform":"Hera","scenario":1}"#);
        let (endpoint, response) = route(&state, &req);
        assert_eq!((endpoint, response.status), ("optimize", 200));
        let doc = Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();

        let evaluator = Evaluator::new(RunOptions {
            simulate: false,
            ..RunOptions::default()
        });
        let model = ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S1)
            .model()
            .unwrap();
        let expected = evaluator.compare(&model);
        let numerical = doc.get("numerical").unwrap();
        assert_eq!(
            numerical.get("processors").unwrap().as_f64().unwrap(),
            expected.numerical.processors
        );
        assert_eq!(
            numerical.get("period").unwrap().as_f64().unwrap(),
            expected.numerical.period
        );
        assert_eq!(
            numerical.get("overhead").unwrap().as_f64().unwrap(),
            expected.numerical.predicted_overhead
        );
        let fo = doc.get("first_order").unwrap();
        let expected_fo = expected.first_order.unwrap();
        assert_eq!(
            fo.get("processors").unwrap().as_f64().unwrap(),
            expected_fo.processors
        );
        assert_eq!(
            fo.get("period").unwrap().as_f64().unwrap(),
            expected_fo.period
        );
        // The second identical query hits the shared cache.
        let (_, again) = route(&state, &req);
        assert_eq!(again.body, response.body);
        assert_eq!(state.cache.stats().hits, 1);
    }

    #[test]
    fn optimize_csv_matches_the_sweep_engine_bytes() {
        let state = state();
        let mut req = post(
            "/v1/optimize",
            r#"{"platform":"Hera","scenario":1,"lambda_multiplier":1,"processors":256,"pattern_length":3600}"#,
        );
        req.headers
            .push(("accept".to_string(), "text/csv".to_string()));
        let (_, response) = route(&state, &req);
        assert_eq!(response.status, 200);
        let csv = String::from_utf8(response.body).unwrap();

        // The equivalent one-cell grid through the sweep engine.
        let grid = ScenarioGrid::builder()
            .platforms(&[PlatformId::Hera])
            .scenarios(&[ScenarioId::S1])
            .lambda_multipliers(&[1.0])
            .processors(ProcessorAxis::Fixed(vec![256.0]))
            .pattern_lengths(&[3600.0])
            .build()
            .unwrap();
        let offline = SweepExecutor::new(SweepOptions::new(RunOptions {
            simulate: false,
            ..RunOptions::default()
        }))
        .run(&grid);
        assert_eq!(csv, offline.to_csv());
    }

    #[test]
    fn batch_preserves_query_order_and_validates_eagerly() {
        let state = state();
        let body = r#"{"queries":[
            {"platform":"Hera","scenario":1,"processors":256},
            {"platform":"Atlas","scenario":3},
            {"platform":"Hera","scenario":1,"processors":256}
        ]}"#;
        let (endpoint, response) = route(&state, &post("/v1/batch", body));
        assert_eq!((endpoint, response.status), ("batch", 200));
        let doc = Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert_eq!(doc.get("count").unwrap().as_f64().unwrap(), 3.0);
        let results = doc.get("results").unwrap().as_array().unwrap();
        assert_eq!(
            results[0].get("platform").unwrap().as_str().unwrap(),
            "Hera"
        );
        assert_eq!(
            results[1].get("platform").unwrap().as_str().unwrap(),
            "Atlas"
        );
        // Identical queries produce identical documents (and share the cache).
        assert_eq!(results[0].render(), results[2].render());

        let (_, bad) = route(
            &state,
            &post("/v1/batch", r#"{"queries":[{"platform":"Nope"}]}"#),
        );
        assert_eq!(bad.status, 400);
        let message = String::from_utf8(bad.body).unwrap();
        assert!(message.contains("query 0"), "{message}");
    }

    #[test]
    fn sweep_jobs_run_to_csv_and_report_status() {
        let state = state();
        let body = r#"{"platforms":["Hera"],"scenarios":[1,3],"lambda_multipliers":[1,10],
                       "processors":[256,1024],"pattern_lengths":[3600]}"#;
        let (_, accepted) = route(&state, &post("/v1/sweep", body));
        assert_eq!(accepted.status, 202);
        let doc = Json::parse(std::str::from_utf8(&accepted.body).unwrap()).unwrap();
        assert_eq!(doc.get("cells").unwrap().as_f64().unwrap(), 8.0);
        let id = doc.get("id").unwrap().as_f64().unwrap() as u64;

        // Poll until the CSV arrives.
        let csv = loop {
            let (_, poll) = route(&state, &get(&format!("/v1/sweep/{id}")));
            assert_eq!(poll.status, 200);
            if poll.content_type.starts_with("text/csv") {
                break String::from_utf8(poll.body).unwrap();
            }
            std::thread::yield_now();
        };
        assert!(csv.starts_with(CSV_HEADER));
        assert_eq!(csv.lines().count(), 9);

        // A JSON status request reports completion instead of the bytes.
        let mut req = get(&format!("/v1/sweep/{id}"));
        req.headers
            .push(("accept".to_string(), "application/json".to_string()));
        let (_, status) = route(&state, &req);
        let doc = Json::parse(std::str::from_utf8(&status.body).unwrap()).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str().unwrap(), "done");
        assert_eq!(doc.get("rows").unwrap().as_f64().unwrap(), 8.0);

        // Unknown ids and bad grids are definite errors.
        let (_, missing) = route(&state, &get("/v1/sweep/999"));
        assert_eq!(missing.status, 404);
        let (_, bad) = route(&state, &post("/v1/sweep", r#"{"scenarios":[9]}"#));
        assert_eq!(bad.status, 400);
    }

    #[test]
    fn sharded_sweep_jobs_report_shards_and_honour_resume_tokens() {
        let state = state();
        let body = r#"{"platforms":["Hera"],"scenarios":[1,3],"lambda_multipliers":[1,10],
                       "processors":[256,1024],"shards":3}"#;
        let (_, accepted) = route(&state, &post("/v1/sweep", body));
        assert_eq!(accepted.status, 202);
        let doc = Json::parse(std::str::from_utf8(&accepted.body).unwrap()).unwrap();
        let id = doc.get("id").unwrap().as_f64().unwrap() as u64;
        assert_eq!(doc.get("shards").unwrap().as_f64(), Some(3.0));
        let token = doc
            .get("resume_token")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();

        // Wait for the CSV; it must equal the unsharded engine's bytes.
        let csv = loop {
            let (_, poll) = route(&state, &get(&format!("/v1/sweep/{id}")));
            if poll.content_type.starts_with("text/csv") {
                break String::from_utf8(poll.body).unwrap();
            }
            std::thread::yield_now();
        };
        let grid = ScenarioGrid::builder()
            .platforms(&[PlatformId::Hera])
            .scenarios(&[ScenarioId::S1, ScenarioId::S3])
            .lambda_multipliers(&[1.0, 10.0])
            .processors(ProcessorAxis::Fixed(vec![256.0, 1024.0]))
            .build()
            .unwrap();
        assert_eq!(csv, SweepExecutor::new(state.options).run(&grid).to_csv());

        // The shards view accounts for every cell.
        let (endpoint, shards) = route(&state, &get(&format!("/v1/sweep/{id}/shards")));
        assert_eq!((endpoint, shards.status), ("sweep_shards", 200));
        let doc = Json::parse(std::str::from_utf8(&shards.body).unwrap()).unwrap();
        let progress = doc.get("progress").unwrap().as_array().unwrap();
        assert_eq!(progress.len(), 3);
        let total: f64 = progress
            .iter()
            .map(|p| p.get("total").unwrap().as_f64().unwrap())
            .sum();
        assert_eq!(total as usize, grid.len());

        // Resuming a *completed* job is a structured 400 pointing the client
        // at the CSV it can already fetch (resume rows are only retained for
        // cancelled jobs; the registry-level reuse path is unit-tested in
        // `app::tests::resume_rows_reuses_finished_shards_…`).
        let resume_body = format!(
            r#"{{"platforms":["Hera"],"scenarios":[1,3],"lambda_multipliers":[1,10],
                "processors":[256,1024],"resume_token":"{token}"}}"#
        );
        let (_, resumed) = route(&state, &post("/v1/sweep", &resume_body));
        assert_eq!(resumed.status, 400, "{:?}", String::from_utf8(resumed.body));
        let message = String::from_utf8(resumed.body).unwrap();
        assert!(message.contains("completed"), "{message}");

        // A resume token against a different grid is a structured 400; so are
        // malformed tokens and out-of-range shard counts.
        let (_, mismatched) = route(
            &state,
            &post(
                "/v1/sweep",
                &format!(r#"{{"scenarios":[1],"resume_token":"{token}"}}"#),
            ),
        );
        assert_eq!(mismatched.status, 400);
        let message = String::from_utf8(mismatched.body).unwrap();
        assert!(message.contains("resume_token"), "{message}");
        let (_, bad_token) = route(
            &state,
            &post("/v1/sweep", r#"{"scenarios":[1],"resume_token":"nope"}"#),
        );
        assert_eq!(bad_token.status, 400);
        let (_, bad_shards) = route(&state, &post("/v1/sweep", r#"{"shards":0}"#));
        assert_eq!(bad_shards.status, 400);
        let (_, frac_shards) = route(&state, &post("/v1/sweep", r#"{"shards":2.5}"#));
        assert_eq!(frac_shards.status, 400);

        // The shards view of a plain job says "not sharded"; unknown ids 404.
        let (_, plain) = route(&state, &post("/v1/sweep", r#"{"scenarios":[1]}"#));
        let doc = Json::parse(std::str::from_utf8(&plain.body).unwrap()).unwrap();
        let plain_id = doc.get("id").unwrap().as_f64().unwrap() as u64;
        let (_, view) = route(&state, &get(&format!("/v1/sweep/{plain_id}/shards")));
        assert_eq!(view.status, 400);
        let (_, missing) = route(&state, &get("/v1/sweep/424242/shards"));
        assert_eq!(missing.status, 404);
    }

    #[test]
    fn optimize_failure_models_round_trip_and_fold_pinned_rates() {
        let state = state();
        // Spec string and object form produce byte-identical documents.
        let (_, by_spec) = route(
            &state,
            &post(
                "/v1/optimize",
                r#"{"platform":"Hera","scenario":1,"failure_model":"weibull:0.7"}"#,
            ),
        );
        assert_eq!(by_spec.status, 200);
        let (_, by_object) = route(
            &state,
            &post(
                "/v1/optimize",
                r#"{"platform":"Hera","scenario":1,"failure_model":{"kind":"weibull","shape":0.7}}"#,
            ),
        );
        assert_eq!(by_object.body, by_spec.body);
        let doc = Json::parse(std::str::from_utf8(&by_spec.body).unwrap()).unwrap();
        let model = doc.get("failure_model").unwrap();
        assert_eq!(model.get("kind").unwrap().as_str().unwrap(), "weibull");
        assert_eq!(model.get("spec").unwrap().as_str().unwrap(), "weibull:0.7");
        assert_eq!(model.get("shape").unwrap().as_f64().unwrap(), 0.7);

        // weibull with shape 1 *is* the exponential law: same analytics.
        let (_, exp) = route(
            &state,
            &post("/v1/optimize", r#"{"platform":"Hera","scenario":1}"#),
        );
        let (_, weib1) = route(
            &state,
            &post(
                "/v1/optimize",
                r#"{"platform":"Hera","scenario":1,"failure_model":"weibull:1"}"#,
            ),
        );
        let exp_doc = Json::parse(std::str::from_utf8(&exp.body).unwrap()).unwrap();
        let weib_doc = Json::parse(std::str::from_utf8(&weib1.body).unwrap()).unwrap();
        assert_eq!(
            exp_doc.get("numerical").unwrap().render(),
            weib_doc.get("numerical").unwrap().render()
        );

        // A rate pinned in the spec behaves exactly like 'lambda_ind': the
        // stored model is rate-free, so the documents are byte-identical.
        let (_, pinned) = route(
            &state,
            &post(
                "/v1/optimize",
                r#"{"platform":"Hera","scenario":1,"failure_model":"exp:2e-8"}"#,
            ),
        );
        let (_, explicit) = route(
            &state,
            &post(
                "/v1/optimize",
                r#"{"platform":"Hera","scenario":1,"lambda_ind":2e-8}"#,
            ),
        );
        assert_eq!(pinned.status, 200);
        assert_eq!(pinned.body, explicit.body);
    }

    #[test]
    fn malformed_failure_models_are_structured_400s() {
        let state = state();
        let cases = [
            (
                r#"{"failure_model":"gamma:2"}"#,
                "unknown failure-model kind",
            ),
            (r#"{"failure_model":"weibull:0"}"#, "shape"),
            (
                r#"{"failure_model":{"kind":"weibull","shift":0.7}}"#,
                "takes 'shape', not 'shift'",
            ),
            (r#"{"failure_model":{"kind":"trace"}}"#, "needs a 'path'"),
            (
                r#"{"failure_model":{"kind":"exp","path":"x"}}"#,
                "takes no 'path'",
            ),
            (
                r#"{"failure_model":"weibull:0.7,1e-8","lambda_multiplier":10}"#,
                "specify the rate once",
            ),
            (r#"{"failure_model":42}"#, "spec string or an object"),
        ];
        for (body, needle) in cases {
            let (_, response) = route(&state, &post("/v1/optimize", body));
            assert_eq!(response.status, 400, "{body}");
            let message = String::from_utf8(response.body).unwrap();
            assert!(message.contains(needle), "{body} -> {message}");
        }
    }

    #[test]
    fn sweep_failure_model_axes_match_the_engine_and_reject_pinned_rates() {
        let state = state();
        let body = r#"{"platforms":["Hera"],"scenarios":[1],
                       "failure_models":["exp","weibull:0.7"],
                       "lambda_multipliers":[1,10],"processors":[256]}"#;
        let (_, accepted) = route(&state, &post("/v1/sweep", body));
        assert_eq!(
            accepted.status,
            202,
            "{:?}",
            String::from_utf8(accepted.body)
        );
        let doc = Json::parse(std::str::from_utf8(&accepted.body).unwrap()).unwrap();
        assert_eq!(doc.get("cells").unwrap().as_f64().unwrap(), 4.0);
        let id = doc.get("id").unwrap().as_f64().unwrap() as u64;
        let csv = loop {
            let (_, poll) = route(&state, &get(&format!("/v1/sweep/{id}")));
            if poll.content_type.starts_with("text/csv") {
                break String::from_utf8(poll.body).unwrap();
            }
            std::thread::yield_now();
        };
        let grid = ScenarioGrid::builder()
            .platforms(&[PlatformId::Hera])
            .scenarios(&[ScenarioId::S1])
            .failure_models(&[
                FailureModelSpec::exponential(),
                FailureModelSpec::weibull(0.7).unwrap(),
            ])
            .lambda_multipliers(&[1.0, 10.0])
            .processors(ProcessorAxis::Fixed(vec![256.0]))
            .build()
            .unwrap();
        assert_eq!(csv, SweepExecutor::new(state.options).run(&grid).to_csv());
        assert!(csv.contains(",weibull,0.7,"), "{csv}");

        // Pinned rates and malformed entries are rejected at submission.
        let (_, pinned) = route(
            &state,
            &post("/v1/sweep", r#"{"failure_models":["weibull:0.7,1e-8"]}"#),
        );
        assert_eq!(pinned.status, 400);
        let message = String::from_utf8(pinned.body).unwrap();
        assert!(message.contains("lambda axis"), "{message}");
        let (_, bad) = route(
            &state,
            &post("/v1/sweep", r#"{"failure_models":["nope:1"]}"#),
        );
        assert_eq!(bad.status, 400);
        let message = String::from_utf8(bad.body).unwrap();
        assert!(message.contains("failure_models"), "{message}");
    }

    #[test]
    fn routing_errors_are_exact() {
        let state = state();
        let (_, response) = route(&state, &get("/nope"));
        assert_eq!(response.status, 404);
        let (_, response) = route(&state, &get("/v1/optimize"));
        assert_eq!(response.status, 405);
        assert!(response
            .extra_headers
            .iter()
            .any(|(name, value)| *name == "allow" && value == "POST"));
        let (_, response) = route(&state, &post("/v1/optimize", "{not json"));
        assert_eq!(response.status, 400);
        let (_, response) = route(&state, &post("/v1/optimize", r#"{"scenario":7}"#));
        assert_eq!(response.status, 400);
        // Overflowing JSON numbers parse to infinity and must be rejected,
        // not evaluated at P = ∞.
        let (_, response) = route(&state, &post("/v1/optimize", r#"{"processors":1e999}"#));
        assert_eq!(response.status, 400);
        let (_, response) = route(&state, &get("/healthz"));
        assert_eq!(response.status, 200);
        let (_, response) = route(&state, &get("/metrics"));
        assert_eq!(response.status, 200);
        crate::metrics::validate_prometheus(std::str::from_utf8(&response.body).unwrap()).unwrap();
    }

    fn coordinator_state() -> Arc<AppState> {
        AppState::new(&ServerConfig {
            threads: 2,
            cluster: crate::app::ClusterConfig {
                coordinator: true,
                ..crate::app::ClusterConfig::default()
            },
            ..ServerConfig::default()
        })
    }

    fn body_json(response: &Response) -> Json {
        Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap()
    }

    #[test]
    fn cluster_endpoints_require_the_matching_role() {
        // A plain server is neither coordinator nor worker: every cluster
        // endpoint answers a structured 400, not a 404 (the route exists,
        // the role doesn't).
        let state = state();
        for (endpoint, req) in [
            (
                "worker_register",
                post("/v1/workers/register", r#"{"addr":"127.0.0.1:9"}"#),
            ),
            ("worker_heartbeat", post("/v1/workers/3/heartbeat", "{}")),
            ("workers", get("/v1/workers")),
            ("shard_run", post("/v1/shards/run", "{}")),
            (
                "shard_chunk",
                post("/v1/sweep/1/shards/0/chunk?worker=1&token=0&epoch=0", ""),
            ),
        ] {
            let (label, response) = route(&state, &req);
            assert_eq!((label, response.status), (endpoint, 400), "{endpoint}");
        }
    }

    #[test]
    fn workers_register_heartbeat_and_appear_in_the_view() {
        let state = coordinator_state();
        let (_, response) = route(&state, &post("/v1/workers/register", r#"{"addr":"h:1"}"#));
        assert_eq!(response.status, 200);
        let doc = body_json(&response);
        let id = doc.get("id").unwrap().as_f64().unwrap() as u64;
        let token = doc.get("token").unwrap().as_str().unwrap().to_string();
        assert_eq!(token.len(), 16, "token is a 16-hex-digit string");
        assert!(doc.get("lease_ms").unwrap().as_f64().unwrap() > 0.0);
        assert!(doc.get("heartbeat_ms").unwrap().as_f64().unwrap() > 0.0);

        // Registration without an address is a field error.
        let (_, response) = route(&state, &post("/v1/workers/register", "{}"));
        assert_eq!(response.status, 400);

        let (_, response) = route(
            &state,
            &post(
                &format!("/v1/workers/{id}/heartbeat"),
                &format!(r#"{{"token":"{token}"}}"#),
            ),
        );
        assert_eq!(response.status, 200);
        // A wrong token means the registration is gone: re-register.
        let (_, response) = route(
            &state,
            &post(
                &format!("/v1/workers/{id}/heartbeat"),
                r#"{"token":"00000000deadbeef"}"#,
            ),
        );
        assert_eq!(response.status, 404);

        let (_, response) = route(&state, &get("/v1/workers"));
        assert_eq!(response.status, 200);
        let doc = body_json(&response);
        assert_eq!(doc.get("alive").unwrap().as_f64().unwrap(), 1.0);
        let workers = doc.get("workers").unwrap().as_array().unwrap();
        assert_eq!(workers.len(), 1);
        assert_eq!(workers[0].get("addr").unwrap().as_str().unwrap(), "h:1");
        assert_eq!(workers[0].get("state").unwrap().as_str().unwrap(), "alive");
    }

    #[test]
    fn distributed_submissions_register_with_the_coordinator() {
        let state = coordinator_state();
        let body = r#"{"platforms":["Hera"],"scenarios":[1,3],"processors":[256,1024],"shards":2}"#;
        let (_, response) = route(&state, &post("/v1/sweep", body));
        assert_eq!(response.status, 202);
        let doc = body_json(&response);
        let id = doc.get("id").unwrap().as_f64().unwrap() as u64;
        assert_eq!(doc.get("shards").unwrap().as_f64().unwrap(), 2.0);
        // Distributed jobs have no resume token: re-issue is automatic.
        assert!(matches!(doc.get("resume_token"), Some(Json::Null)));

        // The coordinator's shards view is the enriched one: per-worker
        // assignment, fencing epoch, re-issue count, merged-row watermark.
        let (_, response) = route(&state, &get(&format!("/v1/sweep/{id}/shards")));
        assert_eq!(response.status, 200);
        let doc = body_json(&response);
        assert_eq!(doc.get("merged_rows").unwrap().as_f64().unwrap(), 0.0);
        assert_eq!(doc.get("total").unwrap().as_f64().unwrap(), 4.0);
        let progress = doc.get("progress").unwrap().as_array().unwrap();
        assert_eq!(progress.len(), 2);
        for shard in progress {
            assert_eq!(shard.get("status").unwrap().as_str().unwrap(), "pending");
            assert!(matches!(shard.get("worker"), Some(Json::Null)));
            assert_eq!(shard.get("epoch").unwrap().as_f64().unwrap(), 0.0);
            assert_eq!(shard.get("reissues").unwrap().as_f64().unwrap(), 0.0);
        }

        // The cluster metric families appear on a coordinator.
        let (_, response) = route(&state, &get("/metrics"));
        let text = std::str::from_utf8(&response.body).unwrap();
        assert!(text.contains("ayd_workers{state=\"alive\"}"));
        assert!(text.contains("ayd_shards_dispatched_total"));

        // Cancellation flows through the coordinator.
        let mut cancel = post(&format!("/v1/sweep/{id}"), "");
        cancel.method = "DELETE".to_string();
        let (_, response) = route(&state, &cancel);
        assert_eq!(response.status, 200);
    }

    #[test]
    fn distributed_submissions_reject_resume_tokens() {
        let state = coordinator_state();
        let body = r#"{"platforms":["Hera"],"scenarios":[1],"processors":[256],"shards":1,"resume_token":"0000000000000001:0000000000000002:0000000000000003"}"#;
        let (_, response) = route(&state, &post("/v1/sweep", body));
        assert_eq!(response.status, 400);
        let doc = body_json(&response);
        assert!(doc
            .get("reason")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("coordinator mode does not support resume tokens"));
    }

    #[test]
    fn torn_chunk_uploads_are_rejected_before_touching_the_checkpoint() {
        use ayd_sweep::{ShardChunk, ShardSpec, SweepManifest, CSV_HEADER};

        let state = coordinator_state();
        let body = r#"{"platforms":["Hera"],"scenarios":[1,3],"processors":[256,1024],"shards":2}"#;
        let (_, response) = route(&state, &post("/v1/sweep", body));
        let id = body_json(&response).get("id").unwrap().as_f64().unwrap() as u64;

        // Missing fencing parameters never reach the coordinator.
        let (_, response) = route(
            &state,
            &post(&format!("/v1/sweep/{id}/shards/0/chunk"), "anything"),
        );
        assert_eq!(response.status, 400);

        // A torn body (not valid chunk wire text) is a 400.
        let target =
            format!("/v1/sweep/{id}/shards/0/chunk?worker=1&token=0000000000000001&epoch=0");
        let (_, response) = route(&state, &post(&target, "ayd-shard-chunk v1\ntorn"));
        assert_eq!(response.status, 400);

        // A structurally valid chunk from a worker the coordinator never
        // registered is fenced as stale (409), and the checkpoint stays dry.
        let grid = ScenarioGrid::builder()
            .platforms(&[PlatformId::Hera])
            .scenarios(&[ScenarioId::S1, ScenarioId::S3])
            .processors(ProcessorAxis::Fixed(vec![256.0, 1024.0]))
            .build()
            .unwrap();
        let mut manifest = SweepManifest::new(&grid, &state.options, ShardSpec::new(0, 2).unwrap());
        manifest.completed = 1;
        let row = vec!["x"; CSV_HEADER.matches(',').count() + 1].join(",");
        let chunk = ShardChunk::new(manifest, 0, format!("{row}\n")).unwrap();
        let (_, response) = route(&state, &post(&target, &chunk.render()));
        assert_eq!(response.status, 409);
        let (_, response) = route(&state, &get(&format!("/v1/sweep/{id}/shards")));
        let doc = body_json(&response);
        assert_eq!(doc.get("merged_rows").unwrap().as_f64().unwrap(), 0.0);
        let progress = doc.get("progress").unwrap().as_array().unwrap();
        assert_eq!(progress[0].get("completed").unwrap().as_f64().unwrap(), 0.0);
    }
}
