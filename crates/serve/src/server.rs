//! The TCP accept loop, keep-alive connection handling and graceful shutdown.
//!
//! Connections are jobs on a fixed [`WorkerPool`] behind a bounded queue: when
//! every handler thread is busy and the queue is full, the accept loop itself
//! blocks — backpressure, not unbounded buffering. Shutdown is cooperative
//! (the SIGTERM-equivalent for a `std`-only build): a shared flag plus a
//! wake-up connection to the listener; the accept loop stops, in-flight
//! requests finish, keep-alive loops close after their current response.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::api::route;
use crate::app::{AppState, ServerConfig};
use crate::http::{parse_request, Response};
use crate::pool::WorkerPool;

/// Upper bound on requests served over one keep-alive connection.
const MAX_REQUESTS_PER_CONNECTION: usize = 100_000;

/// Handle for stopping a running server from another thread.
#[derive(Debug, Clone)]
pub struct ServeHandle {
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServeHandle {
    /// The server's bound address (useful with an ephemeral `:0` port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown: sets the flag and wakes the accept loop
    /// with a throwaway connection.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop may be parked in accept(2); poke it awake. Errors
        // are irrelevant — the listener may already be gone.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A bound (but not yet serving) query service.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
}

impl Server {
    /// Binds the listener and builds the shared state. The returned server
    /// does not accept connections until [`Server::serve`] is called.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let state = AppState::new(&config);
        Ok(Server {
            listener,
            state,
            shutdown: Arc::new(AtomicBool::new(false)),
            config,
        })
    }

    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle usable from any thread.
    pub fn handle(&self) -> std::io::Result<ServeHandle> {
        Ok(ServeHandle {
            shutdown: Arc::clone(&self.shutdown),
            addr: self.local_addr()?,
        })
    }

    /// The shared application state (exposed for tests and benches).
    pub fn state(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// Accepts and serves connections until [`ServeHandle::shutdown`] fires,
    /// then drains in-flight connections and returns.
    pub fn serve(self) -> std::io::Result<()> {
        let pool = WorkerPool::new("ayd-conn", self.config.threads, self.config.queue_capacity);
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(_) if self.shutdown.load(Ordering::SeqCst) => break,
                // Transient accept errors (EMFILE, ECONNABORTED): keep going.
                Err(_) => continue,
            };
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            self.state.metrics.connection_opened();
            let state = Arc::clone(&self.state);
            let shutdown = Arc::clone(&self.shutdown);
            let read_timeout = self.config.read_timeout;
            let job = Box::new(move || {
                let _ = stream.set_read_timeout(Some(read_timeout));
                let _ = stream.set_nodelay(true);
                let Ok(reader_stream) = stream.try_clone() else {
                    return;
                };
                let mut reader = BufReader::new(reader_stream);
                let mut writer = stream;
                serve_connection(&mut reader, &mut writer, &state, &shutdown);
            });
            if pool.submit(job).is_err() {
                break;
            }
        }
        // Dropping the pool closes its queue and joins the workers, letting
        // in-flight requests finish.
        drop(pool);
        Ok(())
    }
}

/// Serves requests from one connection until close, error or shutdown.
///
/// Generic over the byte streams so the malformed-request property suite can
/// drive it with in-memory buffers: whatever the input bytes, the output is
/// either empty (clean close / unreadable peer) or a sequence of well-formed
/// HTTP/1.1 responses.
pub fn serve_connection<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    state: &Arc<AppState>,
    shutdown: &AtomicBool,
) {
    for _ in 0..MAX_REQUESTS_PER_CONNECTION {
        let request = match parse_request(reader, &state.limits) {
            Ok(request) => request,
            Err(error) => {
                // Timeouts and closes end the session silently; protocol
                // errors answer once, then close.
                if let Some((status, reason)) = error.status() {
                    let response = Response::error(status, reason, &format!("{error:?}"));
                    let _ = response.write_to(writer, false);
                    state
                        .metrics
                        .observe("parse_error", status, std::time::Duration::ZERO);
                }
                return;
            }
        };
        let started = Instant::now();
        let (endpoint, response) = route(state, &request);
        let keep_alive = !request.wants_close() && !shutdown.load(Ordering::SeqCst);
        let write_ok = response.write_to(writer, keep_alive).is_ok();
        state
            .metrics
            .observe(endpoint, response.status, started.elapsed());
        if !keep_alive || !write_ok {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn test_state() -> Arc<AppState> {
        AppState::new(&ServerConfig {
            threads: 1,
            ..ServerConfig::default()
        })
    }

    fn drive(input: &[u8]) -> String {
        let state = test_state();
        let shutdown = AtomicBool::new(false);
        let mut reader = Cursor::new(input.to_vec());
        let mut output = Vec::new();
        serve_connection(&mut reader, &mut output, &state, &shutdown);
        String::from_utf8_lossy(&output).into_owned()
    }

    #[test]
    fn pipelined_requests_are_served_in_order() {
        let out = drive(
            b"GET /healthz HTTP/1.1\r\n\r\n\
              POST /v1/optimize HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}\
              GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
        );
        assert_eq!(out.matches("HTTP/1.1 200 OK\r\n").count(), 3);
        assert!(out.contains("connection: keep-alive"));
        assert!(out.ends_with('}') || out.contains("connection: close"));
    }

    #[test]
    fn malformed_requests_get_one_response_then_close() {
        let out = drive(b"BOGUS\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n");
        assert_eq!(out.matches("HTTP/1.1").count(), 1);
        assert!(out.starts_with("HTTP/1.1 400 Bad Request\r\n"));
        assert!(out.contains("connection: close"));
    }

    #[test]
    fn clean_close_produces_no_bytes() {
        assert!(drive(b"").is_empty());
    }

    #[test]
    fn shutdown_flag_turns_off_keep_alive() {
        let state = test_state();
        let shutdown = AtomicBool::new(true);
        let mut reader =
            Cursor::new(b"GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n".to_vec());
        let mut output = Vec::new();
        serve_connection(&mut reader, &mut output, &state, &shutdown);
        let out = String::from_utf8(output).unwrap();
        // Only the first request is answered, with connection: close.
        assert_eq!(out.matches("HTTP/1.1 200 OK").count(), 1);
        assert!(out.contains("connection: close"));
    }

    #[test]
    fn end_to_end_over_a_real_socket_with_graceful_shutdown() {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let handle = server.handle().unwrap();
        let addr = handle.addr();
        let thread = std::thread::spawn(move || server.serve());

        let mut client = crate::client::HttpClient::connect(&addr.to_string()).unwrap();
        let response = client
            .post_json("/v1/optimize", r#"{"platform":"Atlas","scenario":3}"#)
            .unwrap();
        assert_eq!(response.status, 200);
        assert!(response.body.contains("\"numerical\""));
        let health = client.get("/healthz", None).unwrap();
        assert_eq!(health.status, 200);

        handle.shutdown();
        thread.join().unwrap().unwrap();
    }
}
