//! The TCP accept loop, keep-alive connection handling and graceful shutdown.
//!
//! Connections are jobs on a fixed [`WorkerPool`] behind a bounded queue: when
//! every handler thread is busy and the queue is full, the accept loop itself
//! blocks — backpressure, not unbounded buffering. Shutdown is cooperative
//! (the SIGTERM-equivalent for a `std`-only build): a shared flag plus a
//! wake-up connection to the listener; the accept loop stops, in-flight
//! requests finish, keep-alive loops close after their current response.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::api::{endpoint_hint, route};
use crate::app::{AppState, IoModel, ServerConfig};
use crate::http::{parse_request, Response};
use crate::pool::WorkerPool;

/// The `x-ayd-trace-id` header value: 16 lowercase hex digits, matching the
/// `trace` field of the span JSON lines, so one grep joins a response to its
/// server-side spans.
pub(crate) fn format_trace_id(trace: u64) -> String {
    format!("{trace:016x}")
}

/// Upper bound on requests served over one keep-alive connection.
pub(crate) const MAX_REQUESTS_PER_CONNECTION: usize = 100_000;

/// The bound sockets of a server: a single blocking listener, or one
/// nonblocking `SO_REUSEPORT` shard per reactor.
enum ListenerSet {
    Blocking(TcpListener),
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Event {
        fds: Vec<crate::sys::Fd>,
        addr: SocketAddr,
    },
}

/// Handle for stopping a running server from another thread.
#[derive(Debug, Clone)]
pub struct ServeHandle {
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServeHandle {
    /// The server's bound address (useful with an ephemeral `:0` port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown: sets the flag and wakes the accept loop
    /// with a throwaway connection.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop may be parked in accept(2); poke it awake. Errors
        // are irrelevant — the listener may already be gone.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A bound (but not yet serving) query service.
pub struct Server {
    listeners: ListenerSet,
    state: Arc<AppState>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
}

impl Server {
    /// Binds the listener(s) and builds the shared state. The returned server
    /// does not accept connections until [`Server::serve`] is called. With
    /// [`IoModel::Event`] this binds one nonblocking `SO_REUSEPORT` shard per
    /// reactor thread (`SO_REUSEPORT` must be set before `bind`, so the
    /// shards cannot be derived from a `std` listener); on builds without the
    /// syscall shim the event model falls back to the blocking engine.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listeners = Self::bind_listeners(&config)?;
        // Ring-only recording is on by default so `/v1/trace/recent` works
        // out of the box; a JSON-lines sink is opt-in via `--trace-log`.
        ayd_obs::enable();
        let state = AppState::new(&config);
        Ok(Server {
            listeners,
            state,
            shutdown: Arc::new(AtomicBool::new(false)),
            config,
        })
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    fn bind_listeners(config: &ServerConfig) -> std::io::Result<ListenerSet> {
        match config.io_model {
            IoModel::Blocking => Ok(ListenerSet::Blocking(TcpListener::bind(&config.addr)?)),
            IoModel::Event => {
                let (fds, addr) =
                    crate::sys::listen_reuseport(&config.addr, config.threads.max(1))?;
                Ok(ListenerSet::Event { fds, addr })
            }
        }
    }

    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    fn bind_listeners(config: &ServerConfig) -> std::io::Result<ListenerSet> {
        Ok(ListenerSet::Blocking(TcpListener::bind(&config.addr)?))
    }

    /// The effective I/O engine (the configured one, folded through platform
    /// support).
    pub fn io_model(&self) -> IoModel {
        match self.listeners {
            ListenerSet::Blocking(_) => IoModel::Blocking,
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            ListenerSet::Event { .. } => IoModel::Event,
        }
    }

    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        match &self.listeners {
            ListenerSet::Blocking(listener) => listener.local_addr(),
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            ListenerSet::Event { addr, .. } => Ok(*addr),
        }
    }

    /// A shutdown handle usable from any thread.
    pub fn handle(&self) -> std::io::Result<ServeHandle> {
        Ok(ServeHandle {
            shutdown: Arc::clone(&self.shutdown),
            addr: self.local_addr()?,
        })
    }

    /// The shared application state (exposed for tests and benches).
    pub fn state(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// Accepts and serves connections until [`ServeHandle::shutdown`] fires,
    /// then drains in-flight connections and returns.
    ///
    /// Cluster-role background threads live exactly as long as the listener
    /// loop: a coordinator runs the dispatcher (lease expiry + shard
    /// dispatch), a worker runs the agent (registration + heartbeats). On
    /// shutdown the worker's in-flight shard is cancelled — kill-style
    /// recovery is the coordinator's job, via lease expiry and re-issue.
    pub fn serve(self) -> std::io::Result<()> {
        let advertise = match &self.config.cluster.advertise {
            Some(addr) => Some(addr.clone()),
            None => self.local_addr().ok().map(|addr| addr.to_string()),
        };
        let mut cluster_threads = Vec::new();
        if let Some(coordinator) = &self.state.coordinator {
            cluster_threads.push(crate::coordinator::spawn_dispatcher(Arc::clone(
                coordinator,
            )));
        }
        if let Some(worker) = &self.state.worker {
            if let Some(advertise) = advertise {
                cluster_threads.push(crate::worker::spawn_agent(Arc::clone(worker), advertise));
            }
        }
        let state = Arc::clone(&self.state);
        let result = match self.listeners {
            ListenerSet::Blocking(listener) => {
                Self::serve_blocking(listener, self.state, self.shutdown, &self.config)
            }
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            ListenerSet::Event { fds, .. } => {
                crate::reactor::serve_event(fds, self.state, self.shutdown, &self.config)
            }
        };
        if let Some(worker) = &state.worker {
            worker.stop();
        }
        if let Some(coordinator) = &state.coordinator {
            coordinator.stop();
        }
        for thread in cluster_threads {
            let _ = thread.join();
        }
        result
    }

    /// The legacy engine: one blocking connection-worker job per connection.
    fn serve_blocking(
        listener: TcpListener,
        state: Arc<AppState>,
        shutdown: Arc<AtomicBool>,
        config: &ServerConfig,
    ) -> std::io::Result<()> {
        let pool = WorkerPool::new("ayd-conn", config.threads, config.queue_capacity);
        state.attach_conn_pool(pool.stats());
        loop {
            let (stream, _) = match listener.accept() {
                Ok(accepted) => accepted,
                Err(_) if shutdown.load(Ordering::SeqCst) => break,
                // Transient accept errors (EMFILE, ECONNABORTED): keep going.
                Err(_) => continue,
            };
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            state.metrics.connection_opened();
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            let read_timeout = config.read_timeout;
            let enqueued = Instant::now();
            let job = Box::new(move || {
                // Queue wait (accept → a worker picks the job up) is recorded
                // on the connection span, separate from per-request service
                // time: the request spans it encloses are independent roots.
                let mut conn_span = ayd_obs::root_span("connection", ayd_obs::fresh_trace_id());
                conn_span.field_u64("queue_wait_ns", enqueued.elapsed().as_nanos() as u64);
                let _ = stream.set_read_timeout(Some(read_timeout));
                let _ = stream.set_nodelay(true);
                if let Ok(reader_stream) = stream.try_clone() {
                    let mut reader = BufReader::new(reader_stream);
                    let mut writer = stream;
                    serve_connection(&mut reader, &mut writer, &state, &shutdown);
                }
                state.metrics.connection_closed();
            });
            if pool.submit(job).is_err() {
                break;
            }
        }
        // Dropping the pool closes its queue and joins the workers, letting
        // in-flight requests finish.
        drop(pool);
        Ok(())
    }
}

/// Serves requests from one connection until close, error or shutdown.
///
/// Generic over the byte streams so the malformed-request property suite can
/// drive it with in-memory buffers: whatever the input bytes, the output is
/// either empty (clean close / unreadable peer) or a sequence of well-formed
/// HTTP/1.1 responses.
pub fn serve_connection<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    state: &Arc<AppState>,
    shutdown: &AtomicBool,
) {
    for _ in 0..MAX_REQUESTS_PER_CONNECTION {
        // The request span opens before the read, so the blocking wait for
        // the first byte lands inside `parse`; a read that finds the peer
        // gone (clean close, timeout) cancels both spans without recording.
        let trace = ayd_obs::fresh_trace_id();
        let mut root = ayd_obs::root_span("request", trace);
        let parse_span = ayd_obs::span("parse");
        let request = match parse_request(reader, &state.limits) {
            Ok(request) => {
                parse_span.finish();
                request
            }
            Err(error) => {
                // Timeouts and closes end the session silently; protocol
                // errors answer once — trace-id stamped — then close.
                if let Some((status, reason)) = error.status() {
                    parse_span.finish();
                    let response = Response::error(status, reason, &format!("{error:?}"))
                        .with_header("x-ayd-trace-id", format_trace_id(trace));
                    let render_span = ayd_obs::span("render");
                    let _ = response.write_to(writer, false);
                    render_span.finish();
                    root.field_str("endpoint", "parse_error");
                    root.field_u64("status", u64::from(status));
                    state
                        .metrics
                        .observe("parse_error", status, std::time::Duration::ZERO);
                } else {
                    parse_span.cancel();
                    root.cancel();
                }
                return;
            }
        };
        let started = Instant::now();
        let endpoint_guess = endpoint_hint(&request.target);
        state.metrics.request_started(endpoint_guess);
        let route_span = ayd_obs::span("route");
        let (endpoint, response) = route(state, &request);
        route_span.finish();
        let response = response.with_header("x-ayd-trace-id", format_trace_id(trace));
        let keep_alive = !request.wants_close() && !shutdown.load(Ordering::SeqCst);
        let render_span = ayd_obs::span("render");
        let write_ok = response.write_to(writer, keep_alive).is_ok();
        render_span.finish();
        state.metrics.request_finished(endpoint_guess);
        if root.is_recording() {
            root.field_str("endpoint", endpoint);
            root.field_u64("status", u64::from(response.status));
        }
        root.finish();
        state
            .metrics
            .observe(endpoint, response.status, started.elapsed());
        if !keep_alive || !write_ok {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn test_state() -> Arc<AppState> {
        AppState::new(&ServerConfig {
            threads: 1,
            ..ServerConfig::default()
        })
    }

    fn drive(input: &[u8]) -> String {
        let state = test_state();
        let shutdown = AtomicBool::new(false);
        let mut reader = Cursor::new(input.to_vec());
        let mut output = Vec::new();
        serve_connection(&mut reader, &mut output, &state, &shutdown);
        String::from_utf8_lossy(&output).into_owned()
    }

    #[test]
    fn pipelined_requests_are_served_in_order() {
        let out = drive(
            b"GET /healthz HTTP/1.1\r\n\r\n\
              POST /v1/optimize HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}\
              GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
        );
        assert_eq!(out.matches("HTTP/1.1 200 OK\r\n").count(), 3);
        assert!(out.contains("connection: keep-alive"));
        assert!(out.ends_with('}') || out.contains("connection: close"));
        // Every response carries a distinct request ID.
        let ids: std::collections::BTreeSet<&str> = out
            .lines()
            .filter_map(|line| line.strip_prefix("x-ayd-trace-id: "))
            .collect();
        assert_eq!(ids.len(), 3);
        assert!(ids.iter().all(|id| id.len() == 16));
    }

    #[test]
    fn malformed_requests_get_one_response_then_close() {
        let out = drive(b"BOGUS\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n");
        assert_eq!(out.matches("HTTP/1.1").count(), 1);
        assert!(out.starts_with("HTTP/1.1 400 Bad Request\r\n"));
        assert!(out.contains("connection: close"));
        assert!(out.contains("x-ayd-trace-id: "));
    }

    #[test]
    fn clean_close_produces_no_bytes() {
        assert!(drive(b"").is_empty());
    }

    #[test]
    fn shutdown_flag_turns_off_keep_alive() {
        let state = test_state();
        let shutdown = AtomicBool::new(true);
        let mut reader =
            Cursor::new(b"GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n".to_vec());
        let mut output = Vec::new();
        serve_connection(&mut reader, &mut output, &state, &shutdown);
        let out = String::from_utf8(output).unwrap();
        // Only the first request is answered, with connection: close.
        assert_eq!(out.matches("HTTP/1.1 200 OK").count(), 1);
        assert!(out.contains("connection: close"));
    }

    #[test]
    fn end_to_end_over_a_real_socket_with_graceful_shutdown() {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let handle = server.handle().unwrap();
        let addr = handle.addr();
        let thread = std::thread::spawn(move || server.serve());

        let mut client = crate::client::HttpClient::connect(&addr.to_string()).unwrap();
        let response = client
            .post_json("/v1/optimize", r#"{"platform":"Atlas","scenario":3}"#)
            .unwrap();
        assert_eq!(response.status, 200);
        assert!(response.body.contains("\"numerical\""));
        let health = client.get("/healthz", None).unwrap();
        assert_eq!(health.status, 200);

        handle.shutdown();
        thread.join().unwrap().unwrap();
    }
}
