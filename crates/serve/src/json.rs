//! A minimal JSON value: strict parser and renderer.
//!
//! The offline build replaces `serde`/`serde_json` with no-op stand-ins (see
//! `vendor/serde`), so the service carries its own ~300-line JSON layer
//! instead. It supports the full JSON grammar with two deliberate
//! restrictions: numbers are `f64` (like `serde_json`'s default) and object
//! keys keep their insertion order (so responses render deterministically).
//!
//! Rendering uses Rust's shortest-roundtrip `f64` formatting, which means a
//! value parsed back with [`Json::parse`] compares bit-identical to the
//! original — the property the `/v1/optimize` acceptance test relies on.

use std::fmt::Write as _;

/// Maximum nesting depth accepted by the parser (arrays + objects).
const MAX_DEPTH: usize = 32;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always an `f64`, like `serde_json`'s lossy mode).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Error raised by [`Json::parse`], with a byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: &'static str,
    /// Byte offset of the error in the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    pub fn str(value: impl Into<String>) -> Json {
        Json::Str(value.into())
    }

    /// A number, or `null` when the value is not finite (JSON has no
    /// NaN/infinity literals).
    pub fn num(value: f64) -> Json {
        if value.is_finite() {
            Json::Num(value)
        } else {
            Json::Null
        }
    }

    /// An optional number (`None` → `null`).
    pub fn opt_num(value: Option<f64>) -> Json {
        value.map_or(Json::Null, Json::num)
    }

    /// Looks up a key in an object (`None` for other variants or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value(0)?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) if x.is_finite() => {
                let _ = write!(out, "{x}");
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &'static str) -> JsonError {
        JsonError {
            message,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next quote/backslash.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: only well-formed pairs accepted.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u', "expected low surrogate")?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid unicode escape"))?);
                        }
                        _ => return Err(self.error("invalid escape character")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digits();
        if int_digits == 0 {
            return Err(self.error("expected digits in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digits() == 0 {
                return Err(self.error("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.error("expected digits in exponent"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("number out of range"))
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_renders_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e-3").unwrap(), Json::Num(-2.5e-3));
        assert_eq!(Json::parse("\"a\\nb\"").unwrap(), Json::str("a\nb"));
        assert_eq!(Json::Num(256.0).render(), "256");
        assert_eq!(Json::str("x\"y").render(), "\"x\\\"y\"");
    }

    #[test]
    fn f64_roundtrips_bit_identically() {
        for x in [
            6551.836818431605,
            0.10923732682928215,
            1.69e-8,
            0.0,
            -1.0,
            1e300,
        ] {
            let rendered = Json::num(x).render();
            let back = Json::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} → {rendered}");
        }
    }

    #[test]
    fn objects_keep_insertion_order_and_support_lookup() {
        let doc = Json::obj(vec![
            ("b", Json::num(2.0)),
            ("a", Json::Arr(vec![Json::num(1.0), Json::Null])),
        ]);
        assert_eq!(doc.render(), "{\"b\":2,\"a\":[1,null]}");
        let parsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.get("b").and_then(Json::as_f64), Some(2.0));
        assert_eq!(parsed.get("a").and_then(Json::as_array).unwrap().len(), 2);
        assert!(parsed.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "01x",
            "\"unterminated",
            "nul",
            "1 2",
            "{\"a\":1,}",
            "[,]",
            "\"\\q\"",
            "\"\\u12\"",
            "--1",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn nesting_depth_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(Json::parse("\"\\u0041\"").unwrap(), Json::str("A"));
        assert_eq!(Json::parse("\"\\ud83d\\ude00\"").unwrap(), Json::str("😀"));
        assert!(Json::parse("\"\\ud83d\"").is_err());
        // Control characters render as escapes and roundtrip.
        let s = Json::str("\u{1}");
        assert_eq!(Json::parse(&s.render()).unwrap(), s);
    }
}
