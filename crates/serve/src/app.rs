//! Server configuration and shared application state.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ayd_sweep::{
    AnalyticEval, CacheStats, NullSink, RunOptions, ScenarioGrid, SearchReport, ShardSpec,
    ShardedEvalCache, SweepExecutor, SweepJobHandle, SweepOptions, SweepRow,
};

use crate::coordinator::Coordinator;
use crate::http::Limits;
use crate::metrics::{GaugeSnapshot, Metrics};
use crate::pool::{PoolStats, WorkerPool};
use crate::worker::WorkerRuntime;

/// True when this build carries the epoll event loop (Linux on
/// x86_64/aarch64 — the targets the vendored syscall shim implements).
pub const EVENT_IO_SUPPORTED: bool = cfg!(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
));

/// Which I/O engine serves connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoModel {
    /// The legacy engine: one blocking worker per in-flight connection.
    Blocking,
    /// Per-core epoll reactors with accept sharding ([`crate::reactor`]).
    /// Falls back to [`IoModel::Blocking`] on builds without the shim.
    Event,
}

impl IoModel {
    /// The platform default: the event loop where the shim exists, the
    /// blocking pool elsewhere.
    pub fn default_model() -> Self {
        if EVENT_IO_SUPPORTED {
            IoModel::Event
        } else {
            IoModel::Blocking
        }
    }

    /// The CLI spelling (`--io-model` value).
    pub fn as_str(self) -> &'static str {
        match self {
            IoModel::Blocking => "blocking",
            IoModel::Event => "event",
        }
    }
}

impl std::str::FromStr for IoModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "blocking" => Ok(IoModel::Blocking),
            "event" => Ok(IoModel::Event),
            other => Err(format!(
                "unknown io model {other:?} (expected \"blocking\" or \"event\")"
            )),
        }
    }
}

/// Cluster role of an instance: standalone (neither flag), the coordinator
/// that decomposes sweeps into shards and dispatches them, or a worker that
/// registers with a coordinator and executes dispatched shards.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Run as the cluster coordinator (`--coordinator`).
    pub coordinator: bool,
    /// Coordinator address to register with (`--worker-of HOST:PORT`).
    pub worker_of: Option<String>,
    /// Worker lease: a worker is *suspect* one lease after its last
    /// heartbeat and *dead* (shard re-issued) after two. Workers heartbeat
    /// at a third of the lease.
    pub lease: Duration,
    /// Address workers advertise to the coordinator for dispatches
    /// (`--advertise`; defaults to the worker's own listen address).
    pub advertise: Option<String>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            coordinator: false,
            worker_of: None,
            lease: Duration::from_millis(3_000),
            advertise: None,
        }
    }
}

/// Configuration of an [`crate::server::Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// I/O engine: epoll reactors or the legacy blocking pool.
    pub io_model: IoModel,
    /// Connection-handler thread count (also sizes the batch compute pool and
    /// the shared cache's shard count).
    pub threads: usize,
    /// Total capacity of the shared evaluation cache.
    pub cache_capacity: usize,
    /// Pending-connection queue bound (accept blocks when full).
    pub queue_capacity: usize,
    /// Request parsing limits; `max_body` is the `--max-body` CLI knob.
    pub limits: Limits,
    /// Socket read timeout (idle keep-alive connections close after this).
    pub read_timeout: Duration,
    /// Maximum concurrently running sweep jobs (further submissions → 503).
    pub max_jobs: usize,
    /// Maximum cells a submitted sweep grid may have (above → 400).
    pub max_sweep_cells: usize,
    /// Base run options of every evaluation. Simulation is always forced off:
    /// the service answers with the analytic/numerical series only.
    pub run: RunOptions,
    /// Cluster role: standalone, coordinator or worker.
    pub cluster: ClusterConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            addr: "127.0.0.1:8080".to_string(),
            io_model: IoModel::default_model(),
            threads,
            cache_capacity: 65_536,
            queue_capacity: 4 * threads.max(1),
            limits: Limits::default(),
            read_timeout: Duration::from_secs(5),
            max_jobs: 4,
            max_sweep_cells: 200_000,
            run: RunOptions::default(),
            cluster: ClusterConfig::default(),
        }
    }
}

/// Shared state of a running server: the process-wide evaluation cache, the
/// metrics registry, the sweep-job registry and the batch compute pool.
pub struct AppState {
    /// Evaluation options (simulation off, default optimiser search ranges).
    pub options: SweepOptions,
    /// Process-wide memoisation cache shared by every request and warm across
    /// requests — the concurrent path the sharded cache exists for.
    pub cache: ShardedEvalCache<AnalyticEval>,
    /// Request counters and the latency histogram.
    pub metrics: Metrics,
    /// Async sweep jobs by id.
    pub jobs: JobRegistry,
    /// Request parsing limits.
    pub limits: Limits,
    /// Compute pool for `/v1/batch` fan-out (distinct from the connection
    /// pool, so a connection worker never waits on its own pool).
    pub compute: WorkerPool,
    /// Maximum concurrently running sweep jobs.
    pub max_jobs: usize,
    /// Maximum cells per submitted sweep grid.
    pub max_sweep_cells: usize,
    /// Server start time (for `/healthz` uptime).
    pub started: Instant,
    /// The cluster coordinator, when this instance runs with
    /// `--coordinator`; owns worker registrations and the shard queues.
    pub coordinator: Option<Arc<Coordinator>>,
    /// The worker runtime, when this instance runs with `--worker-of`;
    /// owns the registration, heartbeats and the executing shard.
    pub worker: Option<Arc<WorkerRuntime>>,
    /// Load gauges of the connection pool, attached by the accept loop once
    /// the pool exists (`None` until then — e.g. in route-level tests).
    conn_pool: Mutex<Option<PoolStats>>,
}

impl AppState {
    /// Builds the shared state for a configuration.
    pub fn new(config: &ServerConfig) -> Arc<Self> {
        let run = RunOptions {
            simulate: false,
            ..config.run
        };
        // Same shard-sizing policy as the sweep executor's per-run caches.
        let shards = ayd_sweep::cache_shards(config.threads);
        Arc::new(Self {
            options: SweepOptions::new(run),
            cache: ShardedEvalCache::new(shards, config.cache_capacity.max(1)),
            metrics: Metrics::new(),
            jobs: JobRegistry::new(),
            limits: config.limits,
            compute: WorkerPool::new("ayd-compute", config.threads, 2 * config.threads.max(1)),
            max_jobs: config.max_jobs.max(1),
            max_sweep_cells: config.max_sweep_cells.max(1),
            started: Instant::now(),
            coordinator: config
                .cluster
                .coordinator
                .then(|| Coordinator::new(config.cluster.lease)),
            worker: config.cluster.worker_of.as_deref().map(WorkerRuntime::new),
            conn_pool: Mutex::new(None),
        })
    }

    /// Attaches the connection pool's load gauges (called by the accept loop;
    /// until then `/metrics` reports the connection pool as idle and empty).
    pub fn attach_conn_pool(&self, stats: PoolStats) {
        *self.conn_pool.lock().expect("conn pool gauge poisoned") = Some(stats);
    }

    /// Samples every point-in-time gauge for a `/metrics` render: both pools'
    /// queue depth and saturation, plus the sweep-job state counts.
    pub fn gauge_snapshot(&self) -> GaugeSnapshot {
        let compute = self.compute.stats();
        let (jobs_queued, jobs_running, jobs_done, jobs_cancelled) = self.jobs.state_counts();
        let mut snapshot = GaugeSnapshot {
            compute_queue_depth: compute.queue_depth(),
            compute_busy: compute.busy_workers(),
            compute_workers: compute.worker_count(),
            jobs_queued,
            jobs_running,
            jobs_done,
            jobs_cancelled,
            ..GaugeSnapshot::default()
        };
        if let Some(conn) = self
            .conn_pool
            .lock()
            .expect("conn pool gauge poisoned")
            .as_ref()
        {
            snapshot.conn_queue_depth = conn.queue_depth();
            snapshot.conn_busy = conn.busy_workers();
            snapshot.conn_workers = conn.worker_count();
        }
        snapshot
    }
}

/// A finished (or cancelled) sweep job, kept for later retrieval.
#[derive(Debug)]
pub struct FinishedJob {
    /// True when the job was cancelled before evaluating every cell.
    pub cancelled: bool,
    /// Number of evaluated rows.
    pub rows: usize,
    /// The canonical sweep CSV of the evaluated rows.
    pub csv: String,
    /// The job's own memoisation-cache counters.
    pub cache: CacheStats,
    /// Per-shard outcome of a sharded job (`None` for plain jobs). Retained
    /// so a cancelled job's finished shards can seed a resumed submission.
    pub shards: Option<FinishedShards>,
}

/// The retained shard state of a finished sharded job.
#[derive(Debug)]
pub struct FinishedShards {
    /// Shard count of the job.
    pub count: usize,
    /// Fingerprint of the job's grid (resume submissions must match it).
    pub grid_fingerprint: u64,
    /// Fingerprint of the job's output-relevant options.
    pub options_fingerprint: u64,
    /// Cells each shard owns.
    pub totals: Vec<usize>,
    /// Rows each shard materialised (equal to `totals` entries when done).
    pub completed: Vec<usize>,
    /// Per-shard rows retained to seed a resume — `Some` only when the job
    /// was **cancelled**. A completed job's CSV already sits in the registry;
    /// keeping a second row-structured copy of every cell would roughly
    /// double its retained memory for no consumer (resuming a completed job
    /// would only reproduce bytes the client can already fetch).
    pub rows_by_shard: Option<Vec<Option<Vec<SweepRow>>>>,
}

/// Progress states of one shard of a sharded job.
const SHARD_PENDING: u8 = 0;
const SHARD_RUNNING: u8 = 1;
const SHARD_DONE: u8 = 2;
const SHARD_REUSED: u8 = 3;

/// Shared progress cell of one shard.
struct ShardSlot {
    total: usize,
    completed: AtomicUsize,
    state: AtomicU8,
}

/// One shard's progress, as reported by `GET /v1/sweep/{id}/shards`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardView {
    /// Shard index.
    pub index: usize,
    /// Cells the shard owns.
    pub total: usize,
    /// Cells evaluated (or reused) so far.
    pub completed: usize,
    /// `pending`, `running`, `done` or `reused`.
    pub status: &'static str,
}

/// Per-shard row sets: `None` marks a shard that never completed.
pub type ShardRows = Vec<Option<Vec<SweepRow>>>;

/// Result a sharded controller thread hands back on join.
struct ShardedOutcome {
    rows_by_shard: ShardRows,
    cache: CacheStats,
    search: SearchReport,
}

/// Handle on a sharded sweep job: shards run one after another on a
/// controller thread (each shard still fans its cells out over the
/// executor's worker pool), so cancellation loses at most the shard in
/// flight — finished shards stay reusable through `resume_token`.
pub struct ShardedJobHandle {
    slots: Arc<Vec<ShardSlot>>,
    cancel: Arc<AtomicBool>,
    grid_fingerprint: u64,
    options_fingerprint: u64,
    thread: std::thread::JoinHandle<ShardedOutcome>,
}

/// Spawns a sharded sweep job. `resumed[i]`, when present, short-circuits
/// shard `i` with rows computed by an earlier (cancelled) job — they are
/// bit-identical to a fresh evaluation by the determinism contract, so the
/// reuse is observationally a pure speed-up.
///
/// Callers may run inside the job registry's submit lock, so this flattens
/// the grid exactly **once** (partitioning the single cell list by
/// `index % count`) — flattening per shard would hold the lock for
/// `count ×` the grid size — and takes the (cell-list-derived) fingerprints
/// precomputed rather than re-flattening to hash.
pub fn spawn_sharded(
    options: SweepOptions,
    grid: &ScenarioGrid,
    count: usize,
    resumed: Vec<Option<Vec<SweepRow>>>,
    grid_fingerprint: u64,
    options_fingerprint: u64,
) -> ShardedJobHandle {
    debug_assert_eq!(resumed.len(), count);
    let mut cells_by_shard: Vec<Vec<ayd_sweep::SweepCell>> = (0..count)
        .map(|index| {
            let spec = ShardSpec::new(index, count).expect("validated by the API layer");
            Vec::with_capacity(spec.cell_count(grid.len()))
        })
        .collect();
    for cell in grid.cells() {
        cells_by_shard[cell.index % count].push(cell);
    }
    let slots: Arc<Vec<ShardSlot>> = Arc::new(
        cells_by_shard
            .iter()
            .map(|cells| ShardSlot {
                total: cells.len(),
                completed: AtomicUsize::new(0),
                state: AtomicU8::new(SHARD_PENDING),
            })
            .collect(),
    );
    let cancel = Arc::new(AtomicBool::new(false));
    let (worker_slots, worker_cancel) = (Arc::clone(&slots), Arc::clone(&cancel));
    let thread = std::thread::spawn(move || {
        let executor = SweepExecutor::new(options);
        let mut rows_by_shard: Vec<Option<Vec<SweepRow>>> = vec![None; cells_by_shard.len()];
        let mut cache = CacheStats::default();
        let mut search = SearchReport::default();
        let mut resumed = resumed;
        for (index, cells) in cells_by_shard.into_iter().enumerate() {
            let slot = &worker_slots[index];
            if let Some(rows) = resumed[index].take() {
                // Release pairs with shard_views' Acquire load of `state`: a
                // reader that sees REUSED also sees the completed count.
                slot.completed.store(rows.len(), Ordering::Relaxed);
                slot.state.store(SHARD_REUSED, Ordering::Release);
                rows_by_shard[index] = Some(rows);
                continue;
            }
            if worker_cancel.load(Ordering::Relaxed) {
                // `continue`, not `break`: shards resumed from an earlier job
                // must still be drained into the retained state, or a
                // cancel-during-resume would throw their finished rows away.
                continue;
            }
            slot.state.store(SHARD_RUNNING, Ordering::Relaxed);
            let mut sink = NullSink;
            let results = executor.run_cells_controlled(
                &cells,
                &mut sink,
                Some(&worker_cancel),
                Some(&slot.completed),
            );
            cache = cache.merged(results.cache);
            search.merge(&results.search);
            if results.rows.len() == cells.len() {
                // Release for the same reason as the REUSED store above: the
                // workers' progress increments happened-before the scope join,
                // so a reader that sees DONE sees the full count.
                slot.state.store(SHARD_DONE, Ordering::Release);
                rows_by_shard[index] = Some(results.rows);
            }
            // A partially evaluated shard is discarded: resume granularity is
            // whole shards, and partial rows would not be addressable by the
            // resume token anyway.
        }
        ShardedOutcome {
            rows_by_shard,
            cache,
            search,
        }
    });
    ShardedJobHandle {
        slots,
        cancel,
        grid_fingerprint,
        options_fingerprint,
        thread,
    }
}

impl ShardedJobHandle {
    fn total(&self) -> usize {
        self.slots.iter().map(|s| s.total).sum()
    }

    fn completed(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.completed.load(Ordering::Relaxed).min(s.total))
            .sum()
    }

    fn shard_views(&self) -> Vec<ShardView> {
        self.slots
            .iter()
            .enumerate()
            .map(|(index, slot)| {
                // Acquire the state *first*: it pairs with the controller's
                // Release stores, so a DONE/REUSED status is never reported
                // with a stale (lower) completed count.
                let status = match slot.state.load(Ordering::Acquire) {
                    SHARD_RUNNING => "running",
                    SHARD_DONE => "done",
                    SHARD_REUSED => "reused",
                    _ => "pending",
                };
                ShardView {
                    index,
                    total: slot.total,
                    completed: slot.completed.load(Ordering::Relaxed).min(slot.total),
                    status,
                }
            })
            .collect()
    }

    fn join(self) -> FinishedJob {
        let count = self.slots.len();
        // A panicked controller thread must not take the registry down with
        // it: treat it as a job that was cancelled before finishing any
        // shard, so clients see a failed (cancelled, zero-row) result and
        // every other endpoint keeps answering.
        let outcome = self.thread.join().unwrap_or_else(|_| ShardedOutcome {
            rows_by_shard: vec![None; count],
            cache: CacheStats::default(),
            search: SearchReport::default(),
        });
        let cancelled = outcome.rows_by_shard.iter().any(Option::is_none);
        let completed: Vec<usize> = outcome
            .rows_by_shard
            .iter()
            .map(|rows| rows.as_ref().map(Vec::len).unwrap_or(0))
            .collect();
        // Deterministic merge by global cell id (ShardSpec owns the
        // shard-to-global mapping, same as ayd-sweep's merge_parts), so
        // interleaving reproduces the unsharded order — and, for a completed
        // job, the unsharded CSV bytes.
        let mut indexed: Vec<(usize, &SweepRow)> = Vec::new();
        for (index, rows) in outcome.rows_by_shard.iter().enumerate() {
            if let Some(rows) = rows {
                let spec = ShardSpec::new(index, count).expect("count validated at submit");
                indexed.extend(
                    rows.iter()
                        .enumerate()
                        .map(|(k, row)| (spec.global_index(k), row)),
                );
            }
        }
        indexed.sort_unstable_by_key(|&(id, _)| id);
        // Render through SweepResults::to_csv — the one canonical CSV
        // serializer — rather than a second header+csv_line loop here.
        let merged = ayd_sweep::SweepResults {
            rows: indexed.into_iter().map(|(_, row)| row.clone()).collect(),
            cache: outcome.cache,
            search: outcome.search,
        };
        let csv = merged.to_csv();
        FinishedJob {
            cancelled,
            rows: merged.rows.len(),
            csv,
            cache: outcome.cache,
            shards: Some(FinishedShards {
                count,
                grid_fingerprint: self.grid_fingerprint,
                options_fingerprint: self.options_fingerprint,
                totals: self.slots.iter().map(|s| s.total).collect(),
                completed,
                rows_by_shard: cancelled.then_some(outcome.rows_by_shard),
            }),
        }
    }
}

/// Handle on a sweep job the coordinator farms out to worker nodes: all
/// state lives in the [`Coordinator`], the handle just adapts it to the
/// registry's lifecycle. Joining takes the finished job out of the
/// coordinator (merged via `merge_parts`, byte-identical to the
/// single-process sweep).
pub struct DistributedJobHandle {
    /// The coordinator owning the job's shard queue and checkpoints.
    pub coordinator: Arc<Coordinator>,
    /// The registry job id, which doubles as the coordinator's job key.
    pub id: u64,
}

impl DistributedJobHandle {
    fn join(self) -> FinishedJob {
        match self.coordinator.take_finished(self.id) {
            Some(outcome) => FinishedJob {
                cancelled: outcome.cancelled,
                rows: outcome.rows,
                csv: outcome.csv,
                // Workers own the evaluation caches; the coordinator never
                // evaluates a cell itself.
                cache: CacheStats::default(),
                shards: Some(FinishedShards {
                    count: outcome.count,
                    grid_fingerprint: outcome.grid_fingerprint,
                    options_fingerprint: outcome.options_fingerprint,
                    totals: outcome.totals,
                    completed: outcome.completed,
                    // Distributed jobs resume through the coordinator's own
                    // checkpoints, not resume tokens.
                    rows_by_shard: None,
                }),
            },
            None => FinishedJob {
                cancelled: true,
                rows: 0,
                csv: format!("{}\n", ayd_sweep::CSV_HEADER),
                cache: CacheStats::default(),
                shards: None,
            },
        }
    }
}

/// A running job: the original single-executor path, the sharded
/// controller, or a coordinator-dispatched distributed job.
pub enum JobHandle {
    /// One background executor over the whole grid.
    Plain(SweepJobHandle),
    /// The sequential-shard controller (see [`spawn_sharded`]).
    Sharded(ShardedJobHandle),
    /// Shards dispatched to worker nodes (see [`Coordinator`]).
    Distributed(DistributedJobHandle),
}

impl JobHandle {
    fn completed(&self) -> usize {
        match self {
            JobHandle::Plain(handle) => handle.completed(),
            JobHandle::Sharded(handle) => handle.completed(),
            JobHandle::Distributed(handle) => handle
                .coordinator
                .job_progress(handle.id)
                .map(|(completed, _)| completed)
                .unwrap_or(0),
        }
    }

    fn total(&self) -> usize {
        match self {
            JobHandle::Plain(handle) => handle.total(),
            JobHandle::Sharded(handle) => handle.total(),
            JobHandle::Distributed(handle) => handle
                .coordinator
                .job_progress(handle.id)
                .map(|(_, total)| total)
                .unwrap_or(0),
        }
    }

    fn cancel(&self) {
        match self {
            JobHandle::Plain(handle) => handle.cancel(),
            JobHandle::Sharded(handle) => handle.cancel.store(true, Ordering::Relaxed),
            JobHandle::Distributed(handle) => handle.coordinator.cancel_job(handle.id),
        }
    }

    fn is_finished(&self) -> bool {
        match self {
            JobHandle::Plain(handle) => handle.is_finished(),
            JobHandle::Sharded(handle) => handle.thread.is_finished(),
            JobHandle::Distributed(handle) => handle.coordinator.job_finished(handle.id),
        }
    }

    fn join(self) -> FinishedJob {
        match self {
            JobHandle::Plain(handle) => {
                let outcome = handle.join();
                FinishedJob {
                    cancelled: outcome.cancelled,
                    rows: outcome.results.rows.len(),
                    csv: outcome.results.to_csv(),
                    cache: outcome.results.cache,
                    shards: None,
                }
            }
            JobHandle::Sharded(handle) => handle.join(),
            JobHandle::Distributed(handle) => handle.join(),
        }
    }
}

enum JobEntry {
    Running(JobHandle),
    Finished(Arc<FinishedJob>),
}

/// A snapshot of one job's state, as reported to clients.
pub enum JobView {
    /// Still evaluating: `(completed, total)` cells.
    Running(usize, usize),
    /// Finished; the payload is shared, not copied.
    Finished(Arc<FinishedJob>),
}

/// How many finished jobs the registry retains for later retrieval. Older
/// results (by id) are evicted first — the registry's memory use is bounded
/// by `max_jobs` running handles plus this many CSV payloads.
const MAX_FINISHED_JOBS: usize = 64;

/// Registry of async sweep jobs.
pub struct JobRegistry {
    next_id: AtomicU64,
    jobs: Mutex<std::collections::HashMap<u64, JobEntry>>,
}

impl JobRegistry {
    fn new() -> Self {
        Self {
            next_id: AtomicU64::new(1),
            jobs: Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// Locks the registry, recovering from poisoning: a panic on a thread
    /// that held the lock must not cascade a panic into every later request.
    /// The map itself stays structurally valid across any of our critical
    /// sections (single `insert`/`remove` calls), and `reap` re-derives the
    /// running/finished split from the entries on the next access.
    fn lock_jobs(&self) -> std::sync::MutexGuard<'_, std::collections::HashMap<u64, JobEntry>> {
        self.jobs
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Atomically registers a new job unless `max_running` jobs are already
    /// running. `spawn` is only called when the admission check passes, under
    /// the registry lock, so concurrent submissions cannot overshoot the cap;
    /// it receives the assigned job id (the distributed path registers the
    /// job with the coordinator under that id before the handle exists).
    pub fn try_submit(
        &self,
        max_running: usize,
        spawn: impl FnOnce(u64) -> JobHandle,
    ) -> Option<u64> {
        let mut jobs = self.lock_jobs();
        Self::reap(&mut jobs);
        let running = jobs
            .values()
            .filter(|entry| matches!(entry, JobEntry::Running(_)))
            .count();
        if running >= max_running {
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        jobs.insert(id, JobEntry::Running(spawn(id)));
        Some(id)
    }

    /// Number of jobs still running (finished handles are reaped first, so a
    /// drained job never counts against the running cap).
    pub fn running_count(&self) -> usize {
        let mut jobs = self.lock_jobs();
        Self::reap(&mut jobs);
        jobs.values()
            .filter(|entry| matches!(entry, JobEntry::Running(_)))
            .count()
    }

    /// Job counts by state for the `ayd_sweep_jobs` gauge:
    /// `(queued, running, done, cancelled)`. A job counts as queued until its
    /// first cell completes, as running after, and on finish as done or
    /// cancelled (bounded by the registry's finished-job retention).
    pub fn state_counts(&self) -> (usize, usize, usize, usize) {
        let mut jobs = self.lock_jobs();
        Self::reap(&mut jobs);
        let (mut queued, mut running, mut done, mut cancelled) = (0, 0, 0, 0);
        for entry in jobs.values() {
            match entry {
                JobEntry::Running(handle) if handle.completed() == 0 => queued += 1,
                JobEntry::Running(_) => running += 1,
                JobEntry::Finished(job) if job.cancelled => cancelled += 1,
                JobEntry::Finished(_) => done += 1,
            }
        }
        (queued, running, done, cancelled)
    }

    /// Looks up a job, transitioning it to finished when its thread is done.
    pub fn poll(&self, id: u64) -> Option<JobView> {
        let mut jobs = self.lock_jobs();
        Self::reap(&mut jobs);
        match jobs.get(&id)? {
            JobEntry::Running(handle) => Some(JobView::Running(handle.completed(), handle.total())),
            JobEntry::Finished(done) => Some(JobView::Finished(Arc::clone(done))),
        }
    }

    /// Requests cancellation of a running job. Returns `None` for unknown
    /// ids, `Some(true)` when a cancellation was requested, `Some(false)`
    /// when the job had already finished.
    pub fn cancel(&self, id: u64) -> Option<bool> {
        let jobs = self.lock_jobs();
        match jobs.get(&id)? {
            JobEntry::Running(handle) => {
                handle.cancel();
                Some(true)
            }
            JobEntry::Finished(_) => Some(false),
        }
    }

    /// Per-shard progress of a job: `None` for unknown ids, `Some(None)` for
    /// jobs that were not submitted with `shards`, `Some(Some(views))`
    /// otherwise (running or finished).
    pub fn shards_view(&self, id: u64) -> Option<Option<Vec<ShardView>>> {
        let mut jobs = self.lock_jobs();
        Self::reap(&mut jobs);
        match jobs.get(&id)? {
            JobEntry::Running(JobHandle::Sharded(handle)) => Some(Some(handle.shard_views())),
            JobEntry::Running(JobHandle::Plain(_)) => Some(None),
            // Distributed jobs answer from the coordinator's richer view;
            // this basic projection keeps the registry API uniform.
            JobEntry::Running(JobHandle::Distributed(handle)) => Some(
                handle
                    .coordinator
                    .shards_view(handle.id)
                    .map(|view| {
                        view.shards
                            .into_iter()
                            .map(|shard| ShardView {
                                index: shard.index,
                                total: shard.total,
                                completed: shard.completed,
                                status: match shard.status {
                                    "dispatched" => "running",
                                    done_or_pending => done_or_pending,
                                },
                            })
                            .collect()
                    })
                    .or(Some(Vec::new())),
            ),
            JobEntry::Finished(done) => Some(done.shards.as_ref().map(|shards| {
                shards
                    .totals
                    .iter()
                    .zip(&shards.completed)
                    .enumerate()
                    .map(|(index, (&total, &completed))| ShardView {
                        index,
                        total,
                        completed,
                        status: if completed >= total {
                            "done"
                        } else {
                            "pending"
                        },
                    })
                    .collect()
            })),
        }
    }

    /// The per-shard rows a resumed submission may reuse: the finished job
    /// `id` must have been sharded over the same grid and options (by
    /// fingerprint), and — when the caller requests an explicit shard
    /// `count` — with that same count; `None` adopts the stored count (one
    /// atomic lookup, so the job cannot be evicted between a count probe and
    /// the row fetch). Returns the effective count alongside the rows, or an
    /// error message suitable for a 400 response.
    pub fn resume_rows(
        &self,
        id: u64,
        grid_fingerprint: u64,
        options_fingerprint: u64,
        count: Option<usize>,
    ) -> Result<(usize, ShardRows), String> {
        let mut jobs = self.lock_jobs();
        Self::reap(&mut jobs);
        match jobs.get(&id) {
            None => Err(format!("resume_token names unknown sweep job {id}")),
            Some(JobEntry::Running(_)) => Err(format!(
                "sweep job {id} is still running; cancel it before resuming"
            )),
            Some(JobEntry::Finished(done)) => {
                let shards = done
                    .shards
                    .as_ref()
                    .ok_or_else(|| format!("sweep job {id} was not sharded"))?;
                if shards.grid_fingerprint != grid_fingerprint
                    || shards.options_fingerprint != options_fingerprint
                {
                    return Err(format!(
                        "resume_token of job {id} belongs to a different grid or configuration"
                    ));
                }
                if let Some(count) = count {
                    if shards.count != count {
                        return Err(format!(
                            "sweep job {id} ran with {} shards, not {count}",
                            shards.count
                        ));
                    }
                }
                let rows = shards.rows_by_shard.clone().ok_or_else(|| {
                    format!(
                        "sweep job {id} completed; fetch its CSV from /v1/sweep/{id} \
                         instead of resuming"
                    )
                })?;
                Ok((shards.count, rows))
            }
        }
    }

    /// Joins every finished handle in place (cheap: `join` on a finished
    /// thread does not block meaningfully), then evicts the oldest finished
    /// results beyond [`MAX_FINISHED_JOBS`] so a long-lived server's memory
    /// stays bounded no matter how many sweeps it has served.
    fn reap(jobs: &mut std::collections::HashMap<u64, JobEntry>) {
        let finished: Vec<u64> = jobs
            .iter()
            .filter(|(_, entry)| matches!(entry, JobEntry::Running(h) if h.is_finished()))
            .map(|(&id, _)| id)
            .collect();
        for id in finished {
            if let Some(JobEntry::Running(handle)) = jobs.remove(&id) {
                jobs.insert(id, JobEntry::Finished(Arc::new(handle.join())));
            }
        }
        let mut done_ids: Vec<u64> = jobs
            .iter()
            .filter(|(_, entry)| matches!(entry, JobEntry::Finished(_)))
            .map(|(&id, _)| id)
            .collect();
        if done_ids.len() > MAX_FINISHED_JOBS {
            done_ids.sort_unstable();
            for id in &done_ids[..done_ids.len() - MAX_FINISHED_JOBS] {
                jobs.remove(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayd_platforms::ScenarioId;
    use ayd_sweep::{ProcessorAxis, ScenarioGrid, SweepExecutor};

    fn test_state() -> Arc<AppState> {
        AppState::new(&ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        })
    }

    #[test]
    fn job_registry_tracks_running_then_finished() {
        let state = test_state();
        let grid = ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1])
            .processors(ProcessorAxis::Fixed(vec![256.0]))
            .build()
            .unwrap();
        let id = state
            .jobs
            .try_submit(4, |_| {
                JobHandle::Plain(SweepExecutor::new(state.options).spawn(&grid))
            })
            .expect("below the running cap");
        // Poll until the job drains; it must end Finished with one row.
        let done = loop {
            match state.jobs.poll(id).expect("job known") {
                JobView::Running(completed, total) => {
                    assert!(completed <= total);
                    std::thread::yield_now();
                }
                JobView::Finished(done) => break done,
            }
        };
        assert!(!done.cancelled);
        assert_eq!(done.rows, 1);
        assert!(done.csv.starts_with(ayd_sweep::CSV_HEADER));
        assert_eq!(state.jobs.running_count(), 0);
        // Cancelling a finished job is a no-op, unknown ids are None.
        assert_eq!(state.jobs.cancel(id), Some(false));
        assert!(state.jobs.cancel(999).is_none());
        assert!(state.jobs.poll(999).is_none());
    }

    #[test]
    fn registry_caps_running_jobs_and_evicts_the_oldest_finished() {
        let state = test_state();
        let grid = ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1])
            .processors(ProcessorAxis::Fixed(vec![256.0]))
            .build()
            .unwrap();
        // A zero cap rejects without ever spawning.
        assert!(state.jobs.try_submit(0, |_| unreachable!()).is_none());
        // Far more finished jobs than the retention cap: the registry must
        // hold on to at most MAX_FINISHED_JOBS results, oldest evicted first.
        let mut ids = Vec::new();
        for _ in 0..(MAX_FINISHED_JOBS + 4) {
            let id = state
                .jobs
                .try_submit(usize::MAX, |_| {
                    JobHandle::Plain(SweepExecutor::new(state.options).spawn(&grid))
                })
                .unwrap();
            while matches!(state.jobs.poll(id), Some(JobView::Running(..))) {
                std::thread::yield_now();
            }
            ids.push(id);
        }
        assert!(state.jobs.poll(ids[0]).is_none(), "oldest result evicted");
        assert!(state.jobs.poll(*ids.last().unwrap()).is_some());
    }

    #[test]
    fn sharded_jobs_merge_to_the_unsharded_csv_and_report_shard_views() {
        let state = test_state();
        let grid = ScenarioGrid::builder()
            .scenarios(&ScenarioId::ALL)
            .processors(ProcessorAxis::Fixed(vec![256.0, 1024.0]))
            .build()
            .unwrap();
        let count = 3;
        let id = state
            .jobs
            .try_submit(4, |_| {
                JobHandle::Sharded(spawn_sharded(
                    state.options,
                    &grid,
                    count,
                    vec![None; count],
                    grid.fingerprint(),
                    state.options.output_fingerprint(),
                ))
            })
            .unwrap();
        let done = loop {
            match state.jobs.poll(id).unwrap() {
                JobView::Running(..) => std::thread::yield_now(),
                JobView::Finished(done) => break done,
            }
        };
        assert!(!done.cancelled);
        assert_eq!(done.rows, grid.len());
        // The sharded merge is byte-identical to the unsharded engine.
        let unsharded = SweepExecutor::new(state.options).run(&grid).to_csv();
        assert_eq!(done.csv, unsharded);
        // The shard view reports every shard done with its cell count.
        let views = state.jobs.shards_view(id).unwrap().unwrap();
        assert_eq!(views.len(), count);
        assert_eq!(views.iter().map(|v| v.total).sum::<usize>(), grid.len());
        assert!(views
            .iter()
            .all(|v| v.status == "done" && v.completed == v.total));
        // Plain jobs report "not sharded".
        let plain = state
            .jobs
            .try_submit(4, |_| {
                JobHandle::Plain(SweepExecutor::new(state.options).spawn(&grid))
            })
            .unwrap();
        while matches!(state.jobs.poll(plain), Some(JobView::Running(..))) {
            std::thread::yield_now();
        }
        assert!(state.jobs.shards_view(plain).unwrap().is_none());
        assert!(state.jobs.shards_view(9999).is_none());
    }

    #[test]
    fn resume_rows_reuses_finished_shards_and_validates_fingerprints() {
        let state = test_state();
        let grid = ScenarioGrid::builder()
            .scenarios(&ScenarioId::ALL)
            .processors(ProcessorAxis::Fixed(vec![256.0, 1024.0]))
            .build()
            .unwrap();
        let grid_fp = grid.fingerprint();
        let options_fp = state.options.output_fingerprint();
        let count = 2;
        // A *completed* sharded job retains no resume rows (its CSV is the
        // product; duplicating every row would double its memory), so
        // resuming it is a definite error pointing at the CSV.
        let full_id = state
            .jobs
            .try_submit(4, |_| {
                JobHandle::Sharded(spawn_sharded(
                    state.options,
                    &grid,
                    count,
                    vec![None; count],
                    grid_fp,
                    options_fp,
                ))
            })
            .unwrap();
        while matches!(state.jobs.poll(full_id), Some(JobView::Running(..))) {
            std::thread::yield_now();
        }
        let err = state
            .jobs
            .resume_rows(full_id, grid_fp, options_fp, Some(count))
            .unwrap_err();
        assert!(err.contains("completed"), "{err}");

        // Seed a deterministic *cancelled* job (shard 0 done, shard 1 lost) —
        // cancelling a live controller mid-shard is inherently racy, and this
        // is exactly the state ShardedJobHandle::join leaves behind.
        let shard0 = ShardSpec::new(0, count).unwrap();
        let shard0_rows = SweepExecutor::new(state.options)
            .run_cells(&grid.shard_cells(shard0))
            .rows;
        let totals: Vec<usize> = (0..count)
            .map(|i| ShardSpec::new(i, count).unwrap().cell_count(grid.len()))
            .collect();
        let id = 4242;
        state.jobs.jobs.lock().unwrap().insert(
            id,
            JobEntry::Finished(Arc::new(FinishedJob {
                cancelled: true,
                rows: shard0_rows.len(),
                csv: String::new(),
                cache: CacheStats::default(),
                shards: Some(FinishedShards {
                    count,
                    grid_fingerprint: grid_fp,
                    options_fingerprint: options_fp,
                    completed: vec![shard0_rows.len(), 0],
                    totals,
                    rows_by_shard: Some(vec![Some(shard0_rows), None]),
                }),
            })),
        );
        // `None` adopts the stored shard count in the same atomic lookup.
        let (stored_count, rows) = state
            .jobs
            .resume_rows(id, grid_fp, options_fp, None)
            .unwrap();
        assert_eq!(stored_count, count);
        assert_eq!(rows.len(), count);
        assert!(rows[0].is_some() && rows[1].is_none());
        // The incomplete shard shows as pending in the finished view.
        let views = state.jobs.shards_view(id).unwrap().unwrap();
        assert_eq!(views[0].status, "done");
        assert_eq!(views[1].status, "pending");
        // Mismatches are rejected with a reason.
        assert!(state
            .jobs
            .resume_rows(id, grid_fp ^ 1, options_fp, Some(count))
            .is_err());
        assert!(state
            .jobs
            .resume_rows(id, grid_fp, options_fp, Some(3))
            .is_err());
        assert!(state
            .jobs
            .resume_rows(777, grid_fp, options_fp, Some(count))
            .is_err());

        // A job resumed from that state reuses shard 0, computes only shard 1
        // and still merges to the exact unsharded bytes.
        let resumed_id = state
            .jobs
            .try_submit(4, |_| {
                JobHandle::Sharded(spawn_sharded(
                    state.options,
                    &grid,
                    count,
                    rows,
                    grid_fp,
                    options_fp,
                ))
            })
            .unwrap();
        let done = loop {
            match state.jobs.poll(resumed_id).unwrap() {
                JobView::Running(..) => std::thread::yield_now(),
                JobView::Finished(done) => break done,
            }
        };
        assert!(!done.cancelled);
        assert_eq!(
            done.csv,
            SweepExecutor::new(state.options).run(&grid).to_csv()
        );
        let views = state.jobs.shards_view(resumed_id).unwrap().unwrap();
        assert!(views.iter().all(|v| v.status == "done"), "{views:?}");
    }

    #[test]
    fn registry_survives_a_poisoned_lock() {
        let state = test_state();
        let grid = ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1])
            .processors(ProcessorAxis::Fixed(vec![256.0]))
            .build()
            .unwrap();
        // Poison the registry mutex: a thread panics while holding the lock.
        let poisoner = Arc::clone(&state);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.jobs.jobs.lock().unwrap();
            panic!("deliberate poison");
        })
        .join();
        assert!(state.jobs.jobs.lock().is_err(), "mutex must be poisoned");
        // Every registry operation still answers instead of cascading the
        // panic into each later request.
        assert_eq!(state.jobs.running_count(), 0);
        assert!(state.jobs.poll(1).is_none());
        assert!(state.jobs.cancel(1).is_none());
        assert!(state.jobs.shards_view(1).is_none());
        assert!(state.jobs.resume_rows(1, 0, 0, None).is_err());
        let id = state
            .jobs
            .try_submit(4, |_| {
                JobHandle::Plain(SweepExecutor::new(state.options).spawn(&grid))
            })
            .expect("submission works on a poisoned registry");
        let done = loop {
            match state.jobs.poll(id).expect("job known") {
                JobView::Running(..) => std::thread::yield_now(),
                JobView::Finished(done) => break done,
            }
        };
        assert_eq!(done.rows, 1);
    }

    #[test]
    fn a_panicked_sharded_controller_finishes_as_cancelled() {
        let state = test_state();
        // Hand-build a handle whose controller thread dies: join must fold
        // the panic into a cancelled zero-row job, not propagate it.
        let slots: Arc<Vec<ShardSlot>> = Arc::new(
            (0..2)
                .map(|_| ShardSlot {
                    total: 1,
                    completed: AtomicUsize::new(0),
                    state: AtomicU8::new(SHARD_PENDING),
                })
                .collect(),
        );
        let handle = ShardedJobHandle {
            slots,
            cancel: Arc::new(AtomicBool::new(false)),
            grid_fingerprint: 0,
            options_fingerprint: 0,
            thread: std::thread::spawn(|| panic!("deliberate controller crash")),
        };
        let id = state
            .jobs
            .try_submit(4, |_| JobHandle::Sharded(handle))
            .unwrap();
        let done = loop {
            match state.jobs.poll(id).expect("job known") {
                JobView::Running(..) => std::thread::yield_now(),
                JobView::Finished(done) => break done,
            }
        };
        assert!(done.cancelled);
        assert_eq!(done.rows, 0);
        assert!(done.csv.starts_with(ayd_sweep::CSV_HEADER));
        // The registry keeps serving other submissions afterwards.
        assert_eq!(state.jobs.running_count(), 0);
    }

    #[test]
    fn server_state_forces_simulation_off() {
        let state = test_state();
        assert!(!state.options.run.simulate);
        assert!(state.cache.is_empty());
        assert_eq!(state.jobs.running_count(), 0);
    }
}
