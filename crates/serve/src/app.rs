//! Server configuration and shared application state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ayd_sweep::{
    AnalyticEval, CacheStats, RunOptions, ShardedEvalCache, SweepJobHandle, SweepOptions,
};

use crate::http::Limits;
use crate::metrics::Metrics;
use crate::pool::WorkerPool;

/// Configuration of an [`crate::server::Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Connection-handler thread count (also sizes the batch compute pool and
    /// the shared cache's shard count).
    pub threads: usize,
    /// Total capacity of the shared evaluation cache.
    pub cache_capacity: usize,
    /// Pending-connection queue bound (accept blocks when full).
    pub queue_capacity: usize,
    /// Request parsing limits; `max_body` is the `--max-body` CLI knob.
    pub limits: Limits,
    /// Socket read timeout (idle keep-alive connections close after this).
    pub read_timeout: Duration,
    /// Maximum concurrently running sweep jobs (further submissions → 503).
    pub max_jobs: usize,
    /// Maximum cells a submitted sweep grid may have (above → 400).
    pub max_sweep_cells: usize,
    /// Base run options of every evaluation. Simulation is always forced off:
    /// the service answers with the analytic/numerical series only.
    pub run: RunOptions,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            addr: "127.0.0.1:8080".to_string(),
            threads,
            cache_capacity: 65_536,
            queue_capacity: 4 * threads.max(1),
            limits: Limits::default(),
            read_timeout: Duration::from_secs(5),
            max_jobs: 4,
            max_sweep_cells: 200_000,
            run: RunOptions::default(),
        }
    }
}

/// Shared state of a running server: the process-wide evaluation cache, the
/// metrics registry, the sweep-job registry and the batch compute pool.
pub struct AppState {
    /// Evaluation options (simulation off, default optimiser search ranges).
    pub options: SweepOptions,
    /// Process-wide memoisation cache shared by every request and warm across
    /// requests — the concurrent path the sharded cache exists for.
    pub cache: ShardedEvalCache<AnalyticEval>,
    /// Request counters and the latency histogram.
    pub metrics: Metrics,
    /// Async sweep jobs by id.
    pub jobs: JobRegistry,
    /// Request parsing limits.
    pub limits: Limits,
    /// Compute pool for `/v1/batch` fan-out (distinct from the connection
    /// pool, so a connection worker never waits on its own pool).
    pub compute: WorkerPool,
    /// Maximum concurrently running sweep jobs.
    pub max_jobs: usize,
    /// Maximum cells per submitted sweep grid.
    pub max_sweep_cells: usize,
    /// Server start time (for `/healthz` uptime).
    pub started: Instant,
}

impl AppState {
    /// Builds the shared state for a configuration.
    pub fn new(config: &ServerConfig) -> Arc<Self> {
        let run = RunOptions {
            simulate: false,
            ..config.run
        };
        // Same shard-sizing policy as the sweep executor's per-run caches.
        let shards = ayd_sweep::cache_shards(config.threads);
        Arc::new(Self {
            options: SweepOptions::new(run),
            cache: ShardedEvalCache::new(shards, config.cache_capacity.max(1)),
            metrics: Metrics::new(),
            jobs: JobRegistry::new(),
            limits: config.limits,
            compute: WorkerPool::new("ayd-compute", config.threads, 2 * config.threads.max(1)),
            max_jobs: config.max_jobs.max(1),
            max_sweep_cells: config.max_sweep_cells.max(1),
            started: Instant::now(),
        })
    }
}

/// A finished (or cancelled) sweep job, kept for later retrieval.
#[derive(Debug)]
pub struct FinishedJob {
    /// True when the job was cancelled before evaluating every cell.
    pub cancelled: bool,
    /// Number of evaluated rows.
    pub rows: usize,
    /// The canonical sweep CSV of the evaluated rows.
    pub csv: String,
    /// The job's own memoisation-cache counters.
    pub cache: CacheStats,
}

enum JobEntry {
    Running(SweepJobHandle),
    Finished(Arc<FinishedJob>),
}

/// A snapshot of one job's state, as reported to clients.
pub enum JobView {
    /// Still evaluating: `(completed, total)` cells.
    Running(usize, usize),
    /// Finished; the payload is shared, not copied.
    Finished(Arc<FinishedJob>),
}

/// How many finished jobs the registry retains for later retrieval. Older
/// results (by id) are evicted first — the registry's memory use is bounded
/// by `max_jobs` running handles plus this many CSV payloads.
const MAX_FINISHED_JOBS: usize = 64;

/// Registry of async sweep jobs.
pub struct JobRegistry {
    next_id: AtomicU64,
    jobs: Mutex<std::collections::HashMap<u64, JobEntry>>,
}

impl JobRegistry {
    fn new() -> Self {
        Self {
            next_id: AtomicU64::new(1),
            jobs: Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// Atomically registers a new job unless `max_running` jobs are already
    /// running. `spawn` is only called when the admission check passes, under
    /// the registry lock, so concurrent submissions cannot overshoot the cap.
    pub fn try_submit(
        &self,
        max_running: usize,
        spawn: impl FnOnce() -> SweepJobHandle,
    ) -> Option<u64> {
        let mut jobs = self.jobs.lock().expect("job registry poisoned");
        Self::reap(&mut jobs);
        let running = jobs
            .values()
            .filter(|entry| matches!(entry, JobEntry::Running(_)))
            .count();
        if running >= max_running {
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        jobs.insert(id, JobEntry::Running(spawn()));
        Some(id)
    }

    /// Number of jobs still running (finished handles are reaped first, so a
    /// drained job never counts against the running cap).
    pub fn running_count(&self) -> usize {
        let mut jobs = self.jobs.lock().expect("job registry poisoned");
        Self::reap(&mut jobs);
        jobs.values()
            .filter(|entry| matches!(entry, JobEntry::Running(_)))
            .count()
    }

    /// Looks up a job, transitioning it to finished when its thread is done.
    pub fn poll(&self, id: u64) -> Option<JobView> {
        let mut jobs = self.jobs.lock().expect("job registry poisoned");
        Self::reap(&mut jobs);
        match jobs.get(&id)? {
            JobEntry::Running(handle) => Some(JobView::Running(handle.completed(), handle.total())),
            JobEntry::Finished(done) => Some(JobView::Finished(Arc::clone(done))),
        }
    }

    /// Requests cancellation of a running job. Returns `None` for unknown
    /// ids, `Some(true)` when a cancellation was requested, `Some(false)`
    /// when the job had already finished.
    pub fn cancel(&self, id: u64) -> Option<bool> {
        let jobs = self.jobs.lock().expect("job registry poisoned");
        match jobs.get(&id)? {
            JobEntry::Running(handle) => {
                handle.cancel();
                Some(true)
            }
            JobEntry::Finished(_) => Some(false),
        }
    }

    /// Joins every finished handle in place (cheap: `join` on a finished
    /// thread does not block meaningfully), then evicts the oldest finished
    /// results beyond [`MAX_FINISHED_JOBS`] so a long-lived server's memory
    /// stays bounded no matter how many sweeps it has served.
    fn reap(jobs: &mut std::collections::HashMap<u64, JobEntry>) {
        let finished: Vec<u64> = jobs
            .iter()
            .filter(|(_, entry)| matches!(entry, JobEntry::Running(h) if h.is_finished()))
            .map(|(&id, _)| id)
            .collect();
        for id in finished {
            if let Some(JobEntry::Running(handle)) = jobs.remove(&id) {
                let outcome = handle.join();
                jobs.insert(
                    id,
                    JobEntry::Finished(Arc::new(FinishedJob {
                        cancelled: outcome.cancelled,
                        rows: outcome.results.rows.len(),
                        csv: outcome.results.to_csv(),
                        cache: outcome.results.cache,
                    })),
                );
            }
        }
        let mut done_ids: Vec<u64> = jobs
            .iter()
            .filter(|(_, entry)| matches!(entry, JobEntry::Finished(_)))
            .map(|(&id, _)| id)
            .collect();
        if done_ids.len() > MAX_FINISHED_JOBS {
            done_ids.sort_unstable();
            for id in &done_ids[..done_ids.len() - MAX_FINISHED_JOBS] {
                jobs.remove(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayd_platforms::ScenarioId;
    use ayd_sweep::{ProcessorAxis, ScenarioGrid, SweepExecutor};

    fn test_state() -> Arc<AppState> {
        AppState::new(&ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        })
    }

    #[test]
    fn job_registry_tracks_running_then_finished() {
        let state = test_state();
        let grid = ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1])
            .processors(ProcessorAxis::Fixed(vec![256.0]))
            .build()
            .unwrap();
        let id = state
            .jobs
            .try_submit(4, || SweepExecutor::new(state.options).spawn(&grid))
            .expect("below the running cap");
        // Poll until the job drains; it must end Finished with one row.
        let done = loop {
            match state.jobs.poll(id).expect("job known") {
                JobView::Running(completed, total) => {
                    assert!(completed <= total);
                    std::thread::yield_now();
                }
                JobView::Finished(done) => break done,
            }
        };
        assert!(!done.cancelled);
        assert_eq!(done.rows, 1);
        assert!(done.csv.starts_with(ayd_sweep::CSV_HEADER));
        assert_eq!(state.jobs.running_count(), 0);
        // Cancelling a finished job is a no-op, unknown ids are None.
        assert_eq!(state.jobs.cancel(id), Some(false));
        assert!(state.jobs.cancel(999).is_none());
        assert!(state.jobs.poll(999).is_none());
    }

    #[test]
    fn registry_caps_running_jobs_and_evicts_the_oldest_finished() {
        let state = test_state();
        let grid = ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1])
            .processors(ProcessorAxis::Fixed(vec![256.0]))
            .build()
            .unwrap();
        // A zero cap rejects without ever spawning.
        assert!(state.jobs.try_submit(0, || unreachable!()).is_none());
        // Far more finished jobs than the retention cap: the registry must
        // hold on to at most MAX_FINISHED_JOBS results, oldest evicted first.
        let mut ids = Vec::new();
        for _ in 0..(MAX_FINISHED_JOBS + 4) {
            let id = state
                .jobs
                .try_submit(usize::MAX, || {
                    SweepExecutor::new(state.options).spawn(&grid)
                })
                .unwrap();
            while matches!(state.jobs.poll(id), Some(JobView::Running(..))) {
                std::thread::yield_now();
            }
            ids.push(id);
        }
        assert!(state.jobs.poll(ids[0]).is_none(), "oldest result evicted");
        assert!(state.jobs.poll(*ids.last().unwrap()).is_some());
    }

    #[test]
    fn server_state_forces_simulation_off() {
        let state = test_state();
        assert!(!state.options.run.simulate);
        assert!(state.cache.is_empty());
        assert_eq!(state.jobs.running_count(), 0);
    }
}
