//! Per-core epoll reactors: the event-driven serving core.
//!
//! One reactor thread per configured worker, each owning its own
//! `SO_REUSEPORT` listener (the kernel shards incoming connections across
//! them), its own epoll instance and its own connection table — no
//! cross-reactor locking on the I/O path. Sockets are edge-triggered and
//! nonblocking; each connection runs the state machine
//! *reading → dispatched → writing → keep-alive*, feeding
//! [`crate::conn::IncrementalParser`] with whatever bytes arrive, so 100k
//! idle keep-alive connections cost a table entry each instead of a parked
//! worker thread.
//!
//! CPU-bound work never runs on a reactor: parsed requests are handed to a
//! shared handler [`WorkerPool`] (distinct from the `/v1/batch` compute pool,
//! preserving the two-pool discipline of the blocking path), and the finished
//! response bytes come back to the owning reactor through a mutexed
//! completion queue plus an eventfd wake-up. Responses are rendered with the
//! same router, JSON layer and trace-id header as the blocking path, so the
//! served bytes are bit-identical between `--io-model blocking` and `event`.
//!
//! Graceful shutdown drains: the listener closes, idle connections drop, and
//! connections with a request in flight or a response mid-write finish before
//! the reactor exits (bounded by a drain deadline), so a shutdown under load
//! never truncates a response.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::api::{endpoint_hint, route};
use crate::app::{AppState, ServerConfig};
use crate::conn::{head_cap, IncrementalParser, Poll};
use crate::http::{ParseError, Request, Response};
use crate::pool::{PoolClosed, WorkerPool};
use crate::server::{format_trace_id, MAX_REQUESTS_PER_CONNECTION};
use crate::sys;

/// epoll timeout while serving: bounds the latency of noticing the shutdown
/// flag (the wake-up poke only reaches one reactor's accept shard).
const WAIT_MS: i32 = 100;
/// epoll timeout while draining: completions and final writes land fast.
const DRAIN_WAIT_MS: i32 = 10;
/// How long a draining reactor waits for in-flight connections to finish.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);
/// Read scratch size per reactor.
const SCRATCH: usize = 64 * 1024;

/// epoll token of the reactor's accept shard.
const TOKEN_LISTENER: u64 = 0;
/// epoll token of the completion eventfd.
const TOKEN_WAKER: u64 = 1;
/// First token handed to an accepted connection.
const TOKEN_FIRST_CONN: u64 = 2;

/// A rendered response on its way back from a handler to the owning reactor.
struct Completion {
    token: u64,
    bytes: Vec<u8>,
    keep_alive: bool,
}

/// The cross-thread half of a reactor: handlers push rendered responses and
/// post the eventfd; the reactor drains both.
struct Completions {
    queue: Mutex<VecDeque<Completion>>,
    waker: sys::Fd,
}

impl Completions {
    fn push(&self, completion: Completion) {
        self.queue
            .lock()
            .expect("completion queue poisoned")
            .push_back(completion);
        // A failed wake-up is not fatal: the reactor's periodic timeout will
        // pick the completion up.
        let _ = sys::eventfd_write(&self.waker);
    }
}

/// Lifecycle of one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Accumulating request bytes.
    Reading,
    /// One request is on the handler pool; its response has not come back.
    Dispatched,
    /// Response bytes are queued (possibly partially written).
    Writing,
}

/// Per-connection state.
struct Conn {
    fd: sys::Fd,
    parser: IncrementalParser,
    phase: Phase,
    /// Pending response bytes not yet accepted by the kernel.
    out: Vec<u8>,
    /// Prefix of `out` already written.
    written: usize,
    /// The peer's read side ended (EOF or a hard read error).
    eof: bool,
    /// Close once `out` drains (protocol close, error, or shutdown).
    close_after_write: bool,
    /// `EPOLLOUT` currently registered (only while a write is blocked).
    wants_writable: bool,
    /// Requests served on this connection.
    served: usize,
}

impl Conn {
    fn new(fd: sys::Fd) -> Self {
        Self {
            fd,
            parser: IncrementalParser::new(),
            phase: Phase::Reading,
            out: Vec::new(),
            written: 0,
            eof: false,
            close_after_write: false,
            wants_writable: false,
            served: 0,
        }
    }
}

/// One reactor: an epoll instance, an accept shard, a completion queue and
/// the connections the kernel routed here.
struct Reactor {
    index: usize,
    /// The reactor's `ayd_accepts_total` label, formatted once.
    label: String,
    epoll: sys::Fd,
    /// `None` once draining (dropping the fd closes the shard).
    listener: Option<sys::Fd>,
    completions: Arc<Completions>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    state: Arc<AppState>,
    shutdown: Arc<AtomicBool>,
    handlers: Arc<WorkerPool>,
    scratch: Vec<u8>,
    /// Stop reading a connection whose buffer exceeds this (resumes once the
    /// buffered requests drain) — bounds per-connection memory against
    /// pipelining floods.
    pause_at: usize,
    draining: bool,
}

impl Reactor {
    fn run(mut self) -> std::io::Result<()> {
        let interest = sys::EPOLLIN;
        if let Some(listener) = &self.listener {
            sys::epoll_ctl(
                &self.epoll,
                sys::EPOLL_CTL_ADD,
                listener.raw(),
                // Level-triggered on purpose: an accept pass that stops early
                // (e.g. on EMFILE) re-fires instead of stalling the shard.
                interest,
                TOKEN_LISTENER,
            )?;
        }
        sys::epoll_ctl(
            &self.epoll,
            sys::EPOLL_CTL_ADD,
            self.completions.waker.raw(),
            interest,
            TOKEN_WAKER,
        )?;
        let mut events = [sys::EpollEvent::default(); 256];
        let mut drain_deadline: Option<Instant> = None;
        loop {
            let timeout = if self.draining {
                DRAIN_WAIT_MS
            } else {
                WAIT_MS
            };
            let parked = Instant::now();
            let fired = sys::epoll_wait(&self.epoll, &mut events, timeout)?;
            if fired > 0 {
                self.state.metrics.observe_readiness_wait(parked.elapsed());
            }
            for event in &events[..fired] {
                match event.token() {
                    TOKEN_LISTENER => self.accept_burst(),
                    TOKEN_WAKER => {
                        sys::eventfd_drain(&self.completions.waker);
                        self.drain_completions();
                    }
                    token => self.pump(token),
                }
            }
            if !self.draining && self.shutdown.load(Ordering::SeqCst) {
                self.draining = true;
                self.listener = None;
                drain_deadline = Some(Instant::now() + DRAIN_DEADLINE);
                // Idle (between-requests) connections close immediately — a
                // clean response boundary. In-flight dispatches and writes
                // keep their entries and finish below.
                let idle: Vec<u64> = self
                    .conns
                    .iter()
                    .filter(|(_, conn)| conn.phase == Phase::Reading)
                    .map(|(&token, _)| token)
                    .collect();
                for token in idle {
                    self.close(token);
                }
            }
            if self.draining {
                // One more completion sweep: the eventfd may have been posted
                // between the wait and the flag check.
                self.drain_completions();
                let expired = drain_deadline.is_some_and(|deadline| Instant::now() >= deadline);
                if self.conns.is_empty() || expired {
                    for token in self.conns.keys().copied().collect::<Vec<_>>() {
                        self.close(token);
                    }
                    return Ok(());
                }
            }
        }
    }

    /// Accepts until the shard's queue is empty.
    fn accept_burst(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match sys::accept(listener) {
                Ok(fd) => {
                    let _ = sys::set_nodelay(&fd);
                    self.state.metrics.connection_accepted(&self.label);
                    let token = self.next_token;
                    self.next_token += 1;
                    if sys::epoll_ctl(
                        &self.epoll,
                        sys::EPOLL_CTL_ADD,
                        fd.raw(),
                        sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLET,
                        token,
                    )
                    .is_err()
                    {
                        self.state.metrics.connection_closed();
                        continue;
                    }
                    self.conns.insert(token, Conn::new(fd));
                    // Edge-triggered: bytes that raced ahead of the ADD never
                    // produce an edge, so read immediately.
                    self.pump(token);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // EMFILE and friends: back off until the (level-triggered)
                // listener fires again instead of spinning.
                Err(_) => return,
            }
        }
    }

    fn drain_completions(&mut self) {
        loop {
            let completion = self
                .completions
                .queue
                .lock()
                .expect("completion queue poisoned")
                .pop_front();
            let Some(completion) = completion else { return };
            // The connection may have died (hard error) while its request was
            // in flight; the rendered bytes then have nowhere to go.
            let Some(mut conn) = self.conns.remove(&completion.token) else {
                continue;
            };
            debug_assert_eq!(conn.phase, Phase::Dispatched);
            conn.out.extend_from_slice(&completion.bytes);
            conn.close_after_write =
                conn.close_after_write || !completion.keep_alive || self.draining;
            conn.phase = Phase::Writing;
            self.finish_pump(completion.token, conn);
        }
    }

    /// Runs one connection's state machine after a readiness event or
    /// completion, reinserting it unless it closed.
    fn pump(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        self.finish_pump(token, conn);
    }

    fn finish_pump(&mut self, token: u64, mut conn: Conn) {
        if self.drive(token, &mut conn) {
            self.conns.insert(token, conn);
        } else {
            self.state.metrics.connection_closed();
        }
    }

    fn close(&mut self, token: u64) {
        if self.conns.remove(&token).is_some() {
            self.state.metrics.connection_closed();
        }
    }

    /// Advances one connection as far as the kernel allows. Returns `false`
    /// when the connection is finished (the caller drops it, closing the fd).
    fn drive(&mut self, token: u64, conn: &mut Conn) -> bool {
        loop {
            // Read phase: drain the edge regardless of phase (pipelined bytes
            // buffer up behind the in-flight request), pausing above the
            // memory bound.
            while !conn.eof && conn.parser.buffered() < self.pause_at {
                match sys::read(&conn.fd, &mut self.scratch) {
                    Ok(0) => conn.eof = true,
                    Ok(n) => conn.parser.push(&self.scratch[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    // A hard read error: nothing more will arrive; any
                    // response still in flight gets a best-effort write.
                    Err(_) => conn.eof = true,
                }
            }
            match conn.phase {
                Phase::Reading => match conn.parser.poll(&self.state.limits, conn.eof) {
                    Poll::NeedMore => return true,
                    Poll::Ready(request) => {
                        conn.phase = Phase::Dispatched;
                        self.dispatch(token, request);
                        return true;
                    }
                    Poll::Fail(error) => {
                        let Some((status, reason)) = error.status() else {
                            // Clean close or an unreadable peer: no response,
                            // same as the blocking path.
                            return false;
                        };
                        conn.out
                            .extend_from_slice(&self.render_parse_error(&error, status, reason));
                        conn.close_after_write = true;
                        conn.phase = Phase::Writing;
                    }
                },
                Phase::Dispatched => return true,
                Phase::Writing => {
                    while conn.written < conn.out.len() {
                        match sys::write(&conn.fd, &conn.out[conn.written..]) {
                            Ok(n) => conn.written += n,
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                if !conn.wants_writable
                                    && sys::epoll_ctl(
                                        &self.epoll,
                                        sys::EPOLL_CTL_MOD,
                                        conn.fd.raw(),
                                        sys::EPOLLIN
                                            | sys::EPOLLOUT
                                            | sys::EPOLLRDHUP
                                            | sys::EPOLLET,
                                        token,
                                    )
                                    .is_ok()
                                {
                                    conn.wants_writable = true;
                                }
                                return true;
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                            Err(_) => return false,
                        }
                    }
                    // Response fully written: back to keep-alive reading (or
                    // close), and loop — pipelined requests may already be
                    // buffered, and no further readiness will announce them.
                    conn.out.clear();
                    conn.written = 0;
                    if conn.wants_writable {
                        conn.wants_writable = false;
                        let _ = sys::epoll_ctl(
                            &self.epoll,
                            sys::EPOLL_CTL_MOD,
                            conn.fd.raw(),
                            sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLET,
                            token,
                        );
                    }
                    conn.served += 1;
                    if conn.close_after_write || conn.served >= MAX_REQUESTS_PER_CONNECTION {
                        return false;
                    }
                    conn.phase = Phase::Reading;
                }
            }
        }
    }

    /// Hands a parsed request to the handler pool; the rendered response
    /// comes back through the completion queue. Mirrors the blocking path's
    /// per-request spans and metrics, plus the reactor id and the
    /// dispatch-to-run readiness wait.
    fn dispatch(&self, token: u64, request: Request) {
        let state = Arc::clone(&self.state);
        let shutdown = Arc::clone(&self.shutdown);
        let completions = Arc::clone(&self.completions);
        let reactor = self.index as u64;
        let enqueued = Instant::now();
        let job = Box::new(move || {
            let trace = ayd_obs::fresh_trace_id();
            let mut root = ayd_obs::root_span("request", trace);
            root.field_u64("reactor", reactor);
            root.field_u64("readiness_wait_ns", enqueued.elapsed().as_nanos() as u64);
            let started = Instant::now();
            let endpoint_guess = endpoint_hint(&request.target);
            state.metrics.request_started(endpoint_guess);
            let route_span = ayd_obs::span("route");
            let (endpoint, response) = route(&state, &request);
            route_span.finish();
            let response = response.with_header("x-ayd-trace-id", format_trace_id(trace));
            let keep_alive = !request.wants_close() && !shutdown.load(Ordering::SeqCst);
            let render_span = ayd_obs::span("render");
            let bytes = response.to_bytes(keep_alive);
            render_span.finish();
            state.metrics.request_finished(endpoint_guess);
            root.field_str("endpoint", endpoint);
            root.field_u64("status", u64::from(response.status));
            root.finish();
            state
                .metrics
                .observe(endpoint, response.status, started.elapsed());
            completions.push(Completion {
                token,
                bytes,
                keep_alive,
            });
        });
        if let Err(PoolClosed(job)) = self.handlers.submit(job) {
            // The pool only closes at teardown; degrade to inline execution
            // so the dispatched request still gets its response.
            job();
        }
    }

    /// Answers a malformed request exactly like the blocking path: one error
    /// response, trace-id stamped, then close.
    fn render_parse_error(&self, error: &ParseError, status: u16, reason: &'static str) -> Vec<u8> {
        let trace = ayd_obs::fresh_trace_id();
        let mut root = ayd_obs::root_span("request", trace);
        root.field_u64("reactor", self.index as u64);
        let response = Response::error(status, reason, &format!("{error:?}"))
            .with_header("x-ayd-trace-id", format_trace_id(trace));
        let render_span = ayd_obs::span("render");
        let bytes = response.to_bytes(false);
        render_span.finish();
        root.field_str("endpoint", "parse_error");
        root.field_u64("status", u64::from(status));
        root.finish();
        self.state
            .metrics
            .observe("parse_error", status, Duration::ZERO);
        bytes
    }
}

/// Serves the listener shards with one reactor thread each until shutdown,
/// then drains and returns. The handler pool is shared by every reactor and
/// attached to the connection-pool gauges (`/metrics` reports handler load
/// where the blocking path reported connection-worker load).
pub fn serve_event(
    listeners: Vec<sys::Fd>,
    state: Arc<AppState>,
    shutdown: Arc<AtomicBool>,
    config: &ServerConfig,
) -> std::io::Result<()> {
    let threads = config.threads.max(1);
    let handlers = Arc::new(WorkerPool::new(
        "ayd-handler",
        threads,
        config.queue_capacity.max(1),
    ));
    state.attach_conn_pool(handlers.stats());
    let pause_at = config.limits.max_body + head_cap(&config.limits) + SCRATCH;
    let mut workers = Vec::with_capacity(listeners.len());
    for (index, listener) in listeners.into_iter().enumerate() {
        let reactor = Reactor {
            index,
            label: index.to_string(),
            epoll: sys::epoll_create()?,
            listener: Some(listener),
            completions: Arc::new(Completions {
                queue: Mutex::new(VecDeque::new()),
                waker: sys::eventfd()?,
            }),
            conns: HashMap::new(),
            next_token: TOKEN_FIRST_CONN,
            state: Arc::clone(&state),
            shutdown: Arc::clone(&shutdown),
            handlers: Arc::clone(&handlers),
            scratch: vec![0; SCRATCH],
            pause_at,
            draining: false,
        };
        workers.push(
            std::thread::Builder::new()
                .name(format!("ayd-reactor-{index}"))
                .spawn(move || reactor.run())?,
        );
    }
    let mut first_error = None;
    for worker in workers {
        match worker.join() {
            Ok(Ok(())) => {}
            Ok(Err(error)) => first_error = first_error.or(Some(error)),
            Err(_) => {
                first_error = first_error
                    .or_else(|| Some(std::io::Error::other("a reactor thread panicked")));
            }
        }
    }
    drop(handlers);
    match first_error {
        Some(error) => Err(error),
        None => Ok(()),
    }
}
