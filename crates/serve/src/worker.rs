//! The worker side of the distributed sweep: registration, heartbeats and
//! shard execution.
//!
//! An ayd-serve instance started with `--worker-of COORDINATOR` runs a small
//! agent thread that registers with the coordinator (`POST
//! /v1/workers/register`), then heartbeats on the advertised cadence; any
//! failed heartbeat — or a `404` telling the worker its lease already
//! expired — drops the registration and re-registers under a fresh identity.
//!
//! Dispatches arrive over the worker's own HTTP listener (`POST
//! /v1/shards/run`): the handler rebuilds the grid from the forwarded sweep
//! request, cross-checks both fingerprints, and hands the shard to
//! [`WorkerRuntime::start_shard`], which computes rows **from the dispatched
//! `start_row`** — cells the coordinator already checkpointed are never
//! recomputed. Rows stream back in [`ShardChunk`] frames every few dozen
//! cells; each flush first appends the rows to a local spool CSV and
//! atomically renames its sidecar manifest (the same
//! [`write_atomic`](ayd_sweep::SweepManifest::write_atomic) discipline as
//! file-based shard runs, so a post-mortem of a killed worker shows exactly
//! what it had durably completed), then uploads the chunk. A refused upload
//! (stale epoch after a re-issue, coordinator restart, cancelled job) aborts
//! the shard: the coordinator owns the authoritative checkpoint and will
//! re-issue from it.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ayd_sweep::{
    csv_line, manifest_path, ScenarioGrid, ShardChunk, ShardSpec, SweepExecutor, SweepManifest,
    SweepOptions, SweepResults, SweepRow, SweepSink,
};

use crate::client::HttpClient;
use crate::json::Json;

/// A live registration with the coordinator.
#[derive(Debug, Clone, Copy)]
struct Registration {
    id: u64,
    token: u64,
    heartbeat: Duration,
}

/// The shard currently executing on this worker.
struct ActiveShard {
    job: u64,
    shard: usize,
    epoch: u64,
    cancel: Arc<AtomicBool>,
}

/// Why a dispatch was refused by the worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StartError {
    /// The dispatch names a worker id this node is not registered as (409).
    NotThisWorker(String),
    /// A shard is already executing here (409) — the coordinator only
    /// dispatches to idle workers, so this fences a duplicated dispatch.
    Busy(String),
    /// The dispatch contradicts this worker's configuration: fingerprint
    /// mismatch, bad shard spec or out-of-range start row (400).
    Mismatch(String),
}

impl StartError {
    /// The HTTP mapping of the refusal.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            StartError::NotThisWorker(_) | StartError::Busy(_) => (409, "Conflict"),
            StartError::Mismatch(_) => (400, "Bad Request"),
        }
    }

    /// The human-readable reason.
    pub fn reason(&self) -> &str {
        match self {
            StartError::NotThisWorker(reason)
            | StartError::Busy(reason)
            | StartError::Mismatch(reason) => reason,
        }
    }
}

/// A parsed `/v1/shards/run` dispatch, as the API layer hands it over.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Distributed job id at the coordinator.
    pub job: u64,
    /// Shard index to compute.
    pub shard: usize,
    /// Shard count of the job.
    pub count: usize,
    /// Fencing epoch uploads must carry.
    pub epoch: u64,
    /// First shard-local row to compute.
    pub start_row: usize,
    /// Worker id the dispatch is addressed to.
    pub worker: u64,
    /// Expected grid fingerprint.
    pub grid_fingerprint: u64,
    /// Expected options fingerprint.
    pub options_fingerprint: u64,
}

/// Worker-side cluster state: the current registration, the (at most one)
/// executing shard, and the agent stop flag.
pub struct WorkerRuntime {
    coordinator: String,
    registration: Mutex<Option<Registration>>,
    active: Mutex<Option<ActiveShard>>,
    stop: AtomicBool,
}

impl WorkerRuntime {
    /// Builds the runtime for a worker of `coordinator` (`host:port`).
    pub fn new(coordinator: &str) -> Arc<Self> {
        Arc::new(Self {
            coordinator: coordinator.to_string(),
            registration: Mutex::new(None),
            active: Mutex::new(None),
            stop: AtomicBool::new(false),
        })
    }

    /// The coordinator address this worker reports to.
    pub fn coordinator(&self) -> &str {
        &self.coordinator
    }

    /// Stops the agent loop and cancels any executing shard.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(active) = self.lock_active().as_ref() {
            active.cancel.store(true, Ordering::SeqCst);
        }
    }

    /// True once [`WorkerRuntime::stop`] was called.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    fn lock_registration(&self) -> std::sync::MutexGuard<'_, Option<Registration>> {
        self.registration
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn lock_active(&self) -> std::sync::MutexGuard<'_, Option<ActiveShard>> {
        self.active
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The current registration id, if the worker is registered.
    pub fn registration_id(&self) -> Option<u64> {
        self.lock_registration().as_ref().map(|r| r.id)
    }

    /// `(job, shard, epoch)` of the executing shard, if any.
    pub fn active_shard(&self) -> Option<(u64, usize, u64)> {
        self.lock_active()
            .as_ref()
            .map(|active| (active.job, active.shard, active.epoch))
    }

    /// Accepts a dispatch and starts the shard on a fresh compute thread.
    ///
    /// Refuses dispatches addressed to another worker id, dispatches while a
    /// shard is already executing, and dispatches whose fingerprints disagree
    /// with this worker's own grid/options (the cluster must be started with
    /// identical run options for the determinism contract to hold).
    pub fn start_shard(
        self: &Arc<Self>,
        options: SweepOptions,
        grid: ScenarioGrid,
        run: ShardRun,
    ) -> Result<(), StartError> {
        let registration = self.lock_registration().ok_or_else(|| {
            StartError::NotThisWorker("worker is not registered with the coordinator".to_string())
        })?;
        if registration.id != run.worker {
            return Err(StartError::NotThisWorker(format!(
                "dispatch addressed to worker {}, this node is worker {}",
                run.worker, registration.id
            )));
        }
        if grid.fingerprint() != run.grid_fingerprint {
            return Err(StartError::Mismatch(format!(
                "grid fingerprint mismatch: dispatch says {:016x}, rebuilt grid is {:016x}",
                run.grid_fingerprint,
                grid.fingerprint()
            )));
        }
        if options.output_fingerprint() != run.options_fingerprint {
            return Err(StartError::Mismatch(format!(
                "options fingerprint mismatch: dispatch says {:016x}, this worker runs {:016x} \
                 (start every node with the same sweep options)",
                run.options_fingerprint,
                options.output_fingerprint()
            )));
        }
        let spec = ShardSpec::new(run.shard, run.count)
            .map_err(|err| StartError::Mismatch(err.to_string()))?;
        let cells = grid.shard_cells(spec);
        if run.start_row > cells.len() {
            return Err(StartError::Mismatch(format!(
                "start_row {} exceeds the shard's {} cells",
                run.start_row,
                cells.len()
            )));
        }
        let cancel = Arc::new(AtomicBool::new(false));
        {
            let mut active = self.lock_active();
            if let Some(executing) = active.as_ref() {
                return Err(StartError::Busy(format!(
                    "worker is executing job {} shard {} (epoch {})",
                    executing.job, executing.shard, executing.epoch
                )));
            }
            *active = Some(ActiveShard {
                job: run.job,
                shard: run.shard,
                epoch: run.epoch,
                cancel: Arc::clone(&cancel),
            });
        }
        let this = Arc::clone(self);
        let token = registration.token;
        std::thread::Builder::new()
            .name(format!("ayd-shard-{}-{}", run.job, run.shard))
            .spawn(move || {
                this.compute_shard(options, grid, spec, run, token, cancel);
            })
            .expect("spawn the shard compute thread");
        Ok(())
    }

    /// The compute thread body: evaluates the shard's cells from `start_row`
    /// through a [`ChunkSink`], then clears the active slot.
    fn compute_shard(
        self: Arc<Self>,
        options: SweepOptions,
        grid: ScenarioGrid,
        spec: ShardSpec,
        run: ShardRun,
        token: u64,
        cancel: Arc<AtomicBool>,
    ) {
        let cells = grid.shard_cells(spec);
        let mut manifest = SweepManifest::new(&grid, &options, spec);
        manifest.completed = run.start_row;
        // Between 16 and 512 rows per chunk: frequent enough that a lost
        // worker forfeits only a small suffix, coarse enough that uploads
        // do not dominate the sweep.
        let chunk_rows = (cells.len() / 16).clamp(16, 512);
        let mut sink = ChunkSink {
            coordinator: self.coordinator.clone(),
            run: run.clone(),
            token,
            manifest,
            sent: run.start_row,
            buffer: String::new(),
            buffered: 0,
            chunk_rows,
            cancel: Arc::clone(&cancel),
            spool: SpoolFiles::open(run.job, run.shard, run.start_row),
        };
        let executor = SweepExecutor::new(options);
        executor.run_cells_controlled(&cells[run.start_row..], &mut sink, Some(&cancel), None);
        if !cancel.load(Ordering::SeqCst) {
            sink.flush();
        }
        let mut active = self.lock_active();
        if let Some(executing) = active.as_ref() {
            if executing.job == run.job
                && executing.shard == run.shard
                && executing.epoch == run.epoch
            {
                *active = None;
            }
        }
    }
}

/// The worker's local spool: a CSV of the rows it computed plus the
/// atomically-renamed sidecar manifest, under the system temp directory.
struct SpoolFiles {
    csv: PathBuf,
    manifest: PathBuf,
}

impl SpoolFiles {
    fn open(job: u64, shard: usize, start_row: usize) -> Option<Self> {
        let dir = std::env::temp_dir().join(format!("ayd-worker-{}", std::process::id()));
        std::fs::create_dir_all(&dir).ok()?;
        let csv = dir.join(format!("job{job}-shard{shard}.csv"));
        // A fresh dispatch starts the spool over; a re-issued suffix appends
        // to whatever this process already spooled.
        if start_row == 0 {
            std::fs::write(&csv, format!("{}\n", ayd_sweep::CSV_HEADER)).ok()?;
        }
        let manifest = manifest_path(&csv);
        Some(Self { csv, manifest })
    }

    fn append(&self, rows: &str) {
        use std::io::Write;
        if let Ok(mut file) = std::fs::OpenOptions::new().append(true).open(&self.csv) {
            let _ = file.write_all(rows.as_bytes());
            let _ = file.flush();
        }
    }
}

/// A [`SweepSink`] that spools rows locally and streams them to the
/// coordinator in [`ShardChunk`] frames.
struct ChunkSink {
    coordinator: String,
    run: ShardRun,
    token: u64,
    /// The manifest snapshot; `completed` advances with every row.
    manifest: SweepManifest,
    /// Rows acknowledged by the coordinator so far (shard-local).
    sent: usize,
    buffer: String,
    buffered: usize,
    chunk_rows: usize,
    cancel: Arc<AtomicBool>,
    spool: Option<SpoolFiles>,
}

impl ChunkSink {
    /// Flushes the buffered rows: spool + atomic manifest rename first, then
    /// the chunk upload. An upload the coordinator refuses (or cannot
    /// receive) cancels the shard — the coordinator re-issues from its own
    /// checkpoint.
    fn flush(&mut self) {
        if self.buffered == 0 {
            return;
        }
        if let Some(spool) = &self.spool {
            spool.append(&self.buffer);
            let _ = self.manifest.write_atomic(&spool.manifest);
        }
        let rows = std::mem::take(&mut self.buffer);
        let buffered = std::mem::replace(&mut self.buffered, 0);
        let chunk = match ShardChunk::new(self.manifest.clone(), self.sent, rows) {
            Ok(chunk) => chunk,
            Err(_) => {
                self.cancel.store(true, Ordering::SeqCst);
                return;
            }
        };
        let path = format!(
            "/v1/sweep/{}/shards/{}/chunk?worker={}&token={:016x}&epoch={}",
            self.run.job, self.run.shard, self.run.worker, self.token, self.run.epoch
        );
        let body = chunk.render();
        let accepted = HttpClient::connect(&self.coordinator)
            .and_then(|mut client| client.request("POST", &path, None, Some(&body)))
            .map(|response| response.status == 200)
            .unwrap_or(false);
        if accepted {
            self.sent += buffered;
        } else {
            self.cancel.store(true, Ordering::SeqCst);
        }
    }
}

impl SweepSink for ChunkSink {
    fn on_row(&mut self, row: &SweepRow) {
        self.buffer.push_str(&csv_line(row));
        self.buffer.push('\n');
        self.buffered += 1;
        self.manifest.completed += 1;
        if self.buffered >= self.chunk_rows {
            self.flush();
        }
    }

    fn finish(&mut self, _results: &SweepResults) {}
}

/// Parses the coordinator's registration response.
fn parse_registration(body: &str) -> Option<Registration> {
    let doc = Json::parse(body).ok()?;
    let id = doc.get("id")?.as_f64()? as u64;
    let token = u64::from_str_radix(doc.get("token")?.as_str()?, 16).ok()?;
    let heartbeat_ms = doc.get("heartbeat_ms")?.as_f64()? as u64;
    Some(Registration {
        id,
        token,
        heartbeat: Duration::from_millis(heartbeat_ms.max(10)),
    })
}

/// The agent loop: register, heartbeat, re-register on any failure; exits
/// when [`WorkerRuntime::stop`] is called.
pub fn run_agent(runtime: Arc<WorkerRuntime>, advertise: String) {
    let retry = Duration::from_millis(200);
    while !runtime.stopped() {
        let registration = *runtime.lock_registration();
        match registration {
            None => {
                let body = Json::obj(vec![("addr", Json::str(advertise.clone()))]).render();
                let registered = HttpClient::connect(runtime.coordinator())
                    .and_then(|mut client| client.post_json("/v1/workers/register", &body))
                    .ok()
                    .filter(|response| response.status == 200)
                    .and_then(|response| parse_registration(&response.body));
                match registered {
                    Some(registration) => {
                        *runtime.lock_registration() = Some(registration);
                    }
                    None => sleep_interruptible(&runtime, retry),
                }
            }
            Some(registration) => {
                sleep_interruptible(&runtime, registration.heartbeat);
                if runtime.stopped() {
                    break;
                }
                let body = Json::obj(vec![(
                    "token",
                    Json::str(format!("{:016x}", registration.token)),
                )])
                .render();
                let path = format!("/v1/workers/{}/heartbeat", registration.id);
                let renewed = HttpClient::connect(runtime.coordinator())
                    .and_then(|mut client| client.post_json(&path, &body))
                    .map(|response| response.status == 200)
                    .unwrap_or(false);
                if !renewed {
                    // Lease lost (coordinator restarted, we were declared
                    // dead, network partition): start over with a fresh
                    // identity. Any executing shard keeps computing; its
                    // uploads will be fenced and it will cancel itself.
                    *runtime.lock_registration() = None;
                }
            }
        }
    }
}

/// Sleeps up to `duration` in small increments, returning early on stop.
fn sleep_interruptible(runtime: &WorkerRuntime, duration: Duration) {
    let step = Duration::from_millis(20);
    let mut remaining = duration;
    while !runtime.stopped() && remaining > Duration::ZERO {
        let slice = remaining.min(step);
        std::thread::sleep(slice);
        remaining = remaining.saturating_sub(slice);
    }
}

/// Spawns [`run_agent`] on a named thread.
pub fn spawn_agent(runtime: Arc<WorkerRuntime>, advertise: String) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("ayd-worker-agent".to_string())
        .spawn(move || run_agent(runtime, advertise))
        .expect("spawn the worker agent thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayd_platforms::ScenarioId;
    use ayd_sweep::{ProcessorAxis, RunOptions};

    fn grid() -> ScenarioGrid {
        ScenarioGrid::builder()
            .scenarios(&[ScenarioId::S1, ScenarioId::S3])
            .processors(ProcessorAxis::Fixed(vec![256.0, 1024.0]))
            .build()
            .unwrap()
    }

    fn options() -> SweepOptions {
        SweepOptions::new(RunOptions {
            simulate: false,
            ..RunOptions::smoke()
        })
    }

    fn run(worker: u64) -> ShardRun {
        ShardRun {
            job: 1,
            shard: 0,
            count: 2,
            epoch: 0,
            start_row: 0,
            worker,
            grid_fingerprint: grid().fingerprint(),
            options_fingerprint: options().output_fingerprint(),
        }
    }

    #[test]
    fn unregistered_and_misaddressed_dispatches_are_refused() {
        let runtime = WorkerRuntime::new("127.0.0.1:9");
        let err = runtime.start_shard(options(), grid(), run(1)).unwrap_err();
        assert!(matches!(err, StartError::NotThisWorker(_)), "{err:?}");
        assert_eq!(err.status().0, 409);
        *runtime.lock_registration() = Some(Registration {
            id: 7,
            token: 0xFEED,
            heartbeat: Duration::from_millis(100),
        });
        let err = runtime.start_shard(options(), grid(), run(1)).unwrap_err();
        assert!(matches!(err, StartError::NotThisWorker(_)), "{err:?}");
    }

    #[test]
    fn fingerprint_mismatches_are_refused_before_any_compute() {
        let runtime = WorkerRuntime::new("127.0.0.1:9");
        *runtime.lock_registration() = Some(Registration {
            id: 1,
            token: 0xFEED,
            heartbeat: Duration::from_millis(100),
        });
        let mut bad = run(1);
        bad.options_fingerprint ^= 1;
        let err = runtime.start_shard(options(), grid(), bad).unwrap_err();
        assert!(matches!(err, StartError::Mismatch(_)), "{err:?}");
        assert_eq!(err.status().0, 400);
        let mut bad = run(1);
        bad.grid_fingerprint ^= 1;
        let err = runtime.start_shard(options(), grid(), bad).unwrap_err();
        assert!(matches!(err, StartError::Mismatch(_)), "{err:?}");
        let mut bad = run(1);
        bad.start_row = 99;
        let err = runtime.start_shard(options(), grid(), bad).unwrap_err();
        assert!(matches!(err, StartError::Mismatch(_)), "{err:?}");
        assert!(runtime.active_shard().is_none(), "nothing started");
    }

    #[test]
    fn a_busy_worker_refuses_a_second_dispatch() {
        let runtime = WorkerRuntime::new("127.0.0.1:9");
        *runtime.lock_registration() = Some(Registration {
            id: 1,
            token: 0xFEED,
            heartbeat: Duration::from_millis(100),
        });
        // Occupy the slot directly (no coordinator in this test).
        *runtime.lock_active() = Some(ActiveShard {
            job: 9,
            shard: 1,
            epoch: 0,
            cancel: Arc::new(AtomicBool::new(false)),
        });
        let err = runtime.start_shard(options(), grid(), run(1)).unwrap_err();
        assert!(matches!(err, StartError::Busy(_)), "{err:?}");
        assert_eq!(err.status().0, 409);
        // Stop cancels the executing shard.
        runtime.stop();
        let cancelled = runtime
            .lock_active()
            .as_ref()
            .map(|active| active.cancel.load(Ordering::SeqCst));
        assert_eq!(cancelled, Some(true));
    }

    #[test]
    fn registration_responses_parse_hex_tokens() {
        let registration = parse_registration(
            r#"{"id": 3, "token": "00ff00ff00ff00ff", "lease_ms": 3000, "heartbeat_ms": 1000}"#,
        )
        .unwrap();
        assert_eq!(registration.id, 3);
        assert_eq!(registration.token, 0x00ff00ff00ff00ff);
        assert_eq!(registration.heartbeat, Duration::from_millis(1000));
        assert!(parse_registration("{}").is_none());
        assert!(parse_registration("not json").is_none());
    }
}
