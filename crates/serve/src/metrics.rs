//! The metrics registry and a typed Prometheus text model.
//!
//! Counters are lock-free atomics; the per-endpoint/status breakdown and the
//! in-flight gauge live in small mutexed maps (the handler path touches each
//! once per request, which is noise next to an optimiser evaluation).
//! Rendering follows the Prometheus text exposition format, version `0.0.4`
//! — `# HELP`/`# TYPE` lines, cumulative histogram buckets, and a `+Inf`
//! bucket equal to `_count`.
//!
//! [`PrometheusText`] is a small typed model of a rendered payload, shared by
//! [`validate_prometheus`], the smoke check and the load generator — so
//! nothing downstream string-scans metric lines.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use ayd_sweep::{CacheStats, FallbackReason, SearchReport};

use crate::coordinator::ClusterStats;

/// Upper bounds (in seconds) of the latency histogram buckets.
const BUCKET_BOUNDS: [f64; 11] = [
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
];

/// Point-in-time gauges sampled at render: pool load and sweep-job states.
/// The registry itself never owns these — the `/metrics` handler snapshots
/// them from the pools and the job registry at scrape time.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Jobs waiting in the connection pool's queue.
    pub conn_queue_depth: usize,
    /// Connection-pool workers currently executing.
    pub conn_busy: usize,
    /// Connection-pool worker threads.
    pub conn_workers: usize,
    /// Jobs waiting in the compute pool's queue.
    pub compute_queue_depth: usize,
    /// Compute-pool workers currently executing.
    pub compute_busy: usize,
    /// Compute-pool worker threads.
    pub compute_workers: usize,
    /// Sweep jobs admitted but not yet past their first chunk.
    pub jobs_queued: usize,
    /// Sweep jobs actively evaluating cells.
    pub jobs_running: usize,
    /// Sweep jobs that finished (and were not cancelled).
    pub jobs_done: usize,
    /// Sweep jobs that were cancelled.
    pub jobs_cancelled: usize,
}

/// Process-wide request metrics.
#[derive(Default)]
pub struct Metrics {
    /// Per-(endpoint, status) request counts.
    by_route: Mutex<BTreeMap<(&'static str, u16), u64>>,
    /// Requests currently being handled, by endpoint. Entries persist at zero
    /// after the last request finishes, so the gauge keeps reporting.
    in_flight: Mutex<BTreeMap<&'static str, u64>>,
    /// Cumulative request count.
    requests: AtomicU64,
    /// Total connections accepted.
    connections: AtomicU64,
    /// Connections currently open (accepted, not yet closed). The event loop
    /// is exactly what makes this gauge interesting: idle keep-alive
    /// connections no longer park a worker, so open ≫ busy is healthy.
    open_connections: AtomicU64,
    /// Accepted connections by acceptor: one entry per reactor (labelled by
    /// index) plus `"blocking"` for the legacy pool's accept loop.
    accepts: Mutex<BTreeMap<String, u64>>,
    /// Readiness-wait histogram buckets: time a reactor spent parked in
    /// `epoll_wait` before events fired, same bounds as the request histogram.
    readiness_buckets: [AtomicU64; BUCKET_BOUNDS.len() + 1],
    /// Sum of readiness waits in nanoseconds.
    readiness_sum_nanos: AtomicU64,
    /// Latency histogram bucket counts (non-cumulative; bucket `i` counts
    /// requests with latency ≤ `BUCKET_BOUNDS[i]`, the last slot is overflow).
    buckets: [AtomicU64; BUCKET_BOUNDS.len() + 1],
    /// Sum of request latencies in nanoseconds.
    latency_sum_nanos: AtomicU64,
    /// Cold-evaluation histogram buckets: latencies of `/v1/optimize`
    /// evaluations that actually ran the optimiser (cache misses), same
    /// bounds as the request histogram.
    cold_buckets: [AtomicU64; BUCKET_BOUNDS.len() + 1],
    /// Sum of cold-evaluation latencies in nanoseconds.
    cold_sum_nanos: AtomicU64,
    /// Warm-evaluation histogram buckets: `/v1/optimize` evaluations answered
    /// from the cache, same bounds.
    warm_buckets: [AtomicU64; BUCKET_BOUNDS.len() + 1],
    /// Sum of warm-evaluation latencies in nanoseconds.
    warm_sum_nanos: AtomicU64,
    /// Scalar searches answered by the warm-started fast path.
    search_fast: AtomicU64,
    /// Scalar searches that fell back to the reference search.
    search_fallback: AtomicU64,
    /// Brent iterations spent across all fast-path searches.
    search_brent_iterations: AtomicU64,
    /// Fallback tallies by [`FallbackReason`], indexed by `reason.index()`.
    search_fallback_reasons: [AtomicU64; FallbackReason::ALL.len()],
}

/// Non-cumulative bucket slot of a latency (last slot is overflow).
fn bucket_slot(seconds: f64) -> usize {
    BUCKET_BOUNDS
        .iter()
        .position(|&bound| seconds <= bound)
        .unwrap_or(BUCKET_BOUNDS.len())
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one accepted connection (legacy blocking accept loop). Pair
    /// with [`Metrics::connection_closed`].
    pub fn connection_opened(&self) {
        self.connection_accepted("blocking");
    }

    /// Records one accepted connection on the named acceptor (a reactor index
    /// or `"blocking"`). Pair with [`Metrics::connection_closed`].
    pub fn connection_accepted(&self, acceptor: &str) {
        self.connections.fetch_add(1, Ordering::Relaxed);
        self.open_connections.fetch_add(1, Ordering::Relaxed);
        let mut accepts = self.accepts.lock().expect("metrics map poisoned");
        match accepts.get_mut(acceptor) {
            Some(count) => *count += 1,
            None => {
                accepts.insert(acceptor.to_string(), 1);
            }
        }
    }

    /// Records one closed connection (saturating: an unmatched call leaves
    /// the gauge at zero rather than wrapping).
    pub fn connection_closed(&self) {
        let _ = self
            .open_connections
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |open| {
                open.checked_sub(1)
            });
    }

    /// Connections currently open.
    pub fn open_connections(&self) -> u64 {
        self.open_connections.load(Ordering::Relaxed)
    }

    /// Records one reactor `epoll_wait` park: how long the reactor waited
    /// before readiness (events or a completion wake-up) fired.
    pub fn observe_readiness_wait(&self, wait: Duration) {
        self.readiness_buckets[bucket_slot(wait.as_secs_f64())].fetch_add(1, Ordering::Relaxed);
        self.readiness_sum_nanos
            .fetch_add(wait.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Marks one request as in flight on `endpoint`. Pair with
    /// [`Metrics::request_finished`].
    pub fn request_started(&self, endpoint: &'static str) {
        *self
            .in_flight
            .lock()
            .expect("metrics map poisoned")
            .entry(endpoint)
            .or_insert(0) += 1;
    }

    /// Ends one in-flight request on `endpoint` (saturating: an unmatched
    /// call leaves the gauge at zero rather than wrapping).
    pub fn request_finished(&self, endpoint: &'static str) {
        let mut map = self.in_flight.lock().expect("metrics map poisoned");
        let slot = map.entry(endpoint).or_insert(0);
        *slot = slot.saturating_sub(1);
    }

    /// Records one served request: the (static) endpoint label, the response
    /// status and the handling latency.
    pub fn observe(&self, endpoint: &'static str, status: u16, latency: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.buckets[bucket_slot(latency.as_secs_f64())].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_nanos
            .fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
        *self
            .by_route
            .lock()
            .expect("metrics map poisoned")
            .entry((endpoint, status))
            .or_insert(0) += 1;
    }

    /// Records one **cold** optimiser evaluation: an `/v1/optimize` query
    /// that missed the cache (or ran uncached) and therefore paid for a
    /// numerical search.
    pub fn observe_cold(&self, latency: Duration) {
        self.cold_buckets[bucket_slot(latency.as_secs_f64())].fetch_add(1, Ordering::Relaxed);
        self.cold_sum_nanos
            .fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records one **warm** optimiser evaluation: an `/v1/optimize` query
    /// answered from the evaluation cache.
    pub fn observe_warm(&self, latency: Duration) {
        self.warm_buckets[bucket_slot(latency.as_secs_f64())].fetch_add(1, Ordering::Relaxed);
        self.warm_sum_nanos
            .fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Accumulates one batch of scalar-search tallies: fast/fallback counts,
    /// Brent iterations, and the per-reason fallback breakdown.
    pub fn observe_search(&self, report: SearchReport) {
        if report.fast > 0 {
            self.search_fast.fetch_add(report.fast, Ordering::Relaxed);
        }
        if report.fallback > 0 {
            self.search_fallback
                .fetch_add(report.fallback, Ordering::Relaxed);
        }
        if report.brent_iterations > 0 {
            self.search_brent_iterations
                .fetch_add(report.brent_iterations, Ordering::Relaxed);
        }
        for reason in FallbackReason::ALL {
            let count = report.fallback_count(reason);
            if count > 0 {
                self.search_fallback_reasons[reason.index()].fetch_add(count, Ordering::Relaxed);
            }
        }
    }

    /// Total requests observed so far.
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Renders every metric in the Prometheus text exposition format,
    /// including the shared evaluation-cache counters, the point-in-time
    /// `gauges` snapshot and — on a coordinator — the cluster families.
    pub fn render_prometheus(
        &self,
        cache: &CacheStats,
        gauges: &GaugeSnapshot,
        cluster: Option<&ClusterStats>,
    ) -> String {
        let mut out = String::with_capacity(4096);

        out.push_str("# HELP ayd_requests_total Requests served, by endpoint and status.\n");
        out.push_str("# TYPE ayd_requests_total counter\n");
        for ((endpoint, status), count) in
            self.by_route.lock().expect("metrics map poisoned").iter()
        {
            out.push_str(&format!(
                "ayd_requests_total{{endpoint=\"{endpoint}\",status=\"{status}\"}} {count}\n"
            ));
        }

        out.push_str("# HELP ayd_connections_total Connections accepted.\n");
        out.push_str("# TYPE ayd_connections_total counter\n");
        out.push_str(&format!(
            "ayd_connections_total {}\n",
            self.connections.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP ayd_open_connections Connections currently open.\n");
        out.push_str("# TYPE ayd_open_connections gauge\n");
        out.push_str(&format!(
            "ayd_open_connections {}\n",
            self.open_connections.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP ayd_accepts_total Connections accepted, by acceptor (reactor index or \"blocking\").\n");
        out.push_str("# TYPE ayd_accepts_total counter\n");
        for (acceptor, count) in self.accepts.lock().expect("metrics map poisoned").iter() {
            out.push_str(&format!(
                "ayd_accepts_total{{reactor=\"{acceptor}\"}} {count}\n"
            ));
        }

        out.push_str("# HELP ayd_in_flight_requests Requests currently being handled.\n");
        out.push_str("# TYPE ayd_in_flight_requests gauge\n");
        for (endpoint, count) in self.in_flight.lock().expect("metrics map poisoned").iter() {
            out.push_str(&format!(
                "ayd_in_flight_requests{{endpoint=\"{endpoint}\"}} {count}\n"
            ));
        }

        render_histogram(
            &mut out,
            "ayd_request_duration_seconds",
            "Request handling latency.",
            &self.buckets,
            self.latency_sum_nanos.load(Ordering::Relaxed),
        );
        render_histogram(
            &mut out,
            "ayd_optimize_warm_seconds",
            "Warm (cache-hit) optimiser evaluation latency of /v1/optimize.",
            &self.warm_buckets,
            self.warm_sum_nanos.load(Ordering::Relaxed),
        );
        render_histogram(
            &mut out,
            "ayd_optimize_cold_seconds",
            "Cold (cache-miss) optimiser evaluation latency of /v1/optimize.",
            &self.cold_buckets,
            self.cold_sum_nanos.load(Ordering::Relaxed),
        );
        render_histogram(
            &mut out,
            "ayd_readiness_wait_seconds",
            "Time a reactor spent parked in epoll_wait before readiness fired.",
            &self.readiness_buckets,
            self.readiness_sum_nanos.load(Ordering::Relaxed),
        );

        out.push_str("# HELP ayd_search_fast_total Scalar searches answered by the warm-started fast path.\n");
        out.push_str("# TYPE ayd_search_fast_total counter\n");
        out.push_str(&format!(
            "ayd_search_fast_total {}\n",
            self.search_fast.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP ayd_search_fallback_total Scalar searches demoted to the reference search.\n",
        );
        out.push_str("# TYPE ayd_search_fallback_total counter\n");
        out.push_str(&format!(
            "ayd_search_fallback_total {}\n",
            self.search_fallback.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP ayd_search_brent_iterations_total Brent iterations across fast-path searches.\n",
        );
        out.push_str("# TYPE ayd_search_brent_iterations_total counter\n");
        out.push_str(&format!(
            "ayd_search_brent_iterations_total {}\n",
            self.search_brent_iterations.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP ayd_search_fallback_reason_total Fallbacks to the reference search, by reason.\n",
        );
        out.push_str("# TYPE ayd_search_fallback_reason_total counter\n");
        for reason in FallbackReason::ALL {
            out.push_str(&format!(
                "ayd_search_fallback_reason_total{{reason=\"{}\"}} {}\n",
                reason.as_str(),
                self.search_fallback_reasons[reason.index()].load(Ordering::Relaxed)
            ));
        }

        out.push_str("# HELP ayd_cache_hits_total Evaluation-cache hits.\n");
        out.push_str("# TYPE ayd_cache_hits_total counter\n");
        out.push_str(&format!("ayd_cache_hits_total {}\n", cache.hits));
        out.push_str("# HELP ayd_cache_misses_total Evaluation-cache misses.\n");
        out.push_str("# TYPE ayd_cache_misses_total counter\n");
        out.push_str(&format!("ayd_cache_misses_total {}\n", cache.misses));
        out.push_str("# HELP ayd_cache_evictions_total Evaluation-cache evictions.\n");
        out.push_str("# TYPE ayd_cache_evictions_total counter\n");
        out.push_str(&format!("ayd_cache_evictions_total {}\n", cache.evictions));
        out.push_str("# HELP ayd_cache_hit_rate Fraction of lookups answered from the cache.\n");
        out.push_str("# TYPE ayd_cache_hit_rate gauge\n");
        out.push_str(&format!("ayd_cache_hit_rate {}\n", cache.hit_rate()));

        out.push_str("# HELP ayd_pool_queue_depth Jobs waiting in a worker pool's queue.\n");
        out.push_str("# TYPE ayd_pool_queue_depth gauge\n");
        out.push_str(&format!(
            "ayd_pool_queue_depth{{pool=\"connection\"}} {}\n",
            gauges.conn_queue_depth
        ));
        out.push_str(&format!(
            "ayd_pool_queue_depth{{pool=\"compute\"}} {}\n",
            gauges.compute_queue_depth
        ));
        out.push_str("# HELP ayd_pool_busy_workers Workers currently executing a job.\n");
        out.push_str("# TYPE ayd_pool_busy_workers gauge\n");
        out.push_str(&format!(
            "ayd_pool_busy_workers{{pool=\"connection\"}} {}\n",
            gauges.conn_busy
        ));
        out.push_str(&format!(
            "ayd_pool_busy_workers{{pool=\"compute\"}} {}\n",
            gauges.compute_busy
        ));
        out.push_str("# HELP ayd_pool_saturation Busy fraction of a pool's workers.\n");
        out.push_str("# TYPE ayd_pool_saturation gauge\n");
        out.push_str(&format!(
            "ayd_pool_saturation{{pool=\"connection\"}} {}\n",
            saturation(gauges.conn_busy, gauges.conn_workers)
        ));
        out.push_str(&format!(
            "ayd_pool_saturation{{pool=\"compute\"}} {}\n",
            saturation(gauges.compute_busy, gauges.compute_workers)
        ));

        out.push_str("# HELP ayd_sweep_jobs Async sweep jobs by state.\n");
        out.push_str("# TYPE ayd_sweep_jobs gauge\n");
        for (state, count) in [
            ("queued", gauges.jobs_queued),
            ("running", gauges.jobs_running),
            ("done", gauges.jobs_done),
            ("cancelled", gauges.jobs_cancelled),
        ] {
            out.push_str(&format!("ayd_sweep_jobs{{state=\"{state}\"}} {count}\n"));
        }

        if let Some(cluster) = cluster {
            out.push_str("# HELP ayd_workers Registered worker nodes by liveness.\n");
            out.push_str("# TYPE ayd_workers gauge\n");
            for (state, count) in [
                ("alive", cluster.workers_alive),
                ("suspect", cluster.workers_suspect),
                ("dead", cluster.workers_dead),
            ] {
                out.push_str(&format!("ayd_workers{{state=\"{state}\"}} {count}\n"));
            }
            out.push_str("# HELP ayd_shards_dispatched_total Shard dispatches sent to workers.\n");
            out.push_str("# TYPE ayd_shards_dispatched_total counter\n");
            out.push_str(&format!(
                "ayd_shards_dispatched_total {}\n",
                cluster.shards_dispatched_total
            ));
            out.push_str(
                "# HELP ayd_shard_reissues_total Shards re-issued after a worker lease expired.\n",
            );
            out.push_str("# TYPE ayd_shard_reissues_total counter\n");
            out.push_str(&format!(
                "ayd_shard_reissues_total {}\n",
                cluster.shard_reissues_total
            ));
            out.push_str("# HELP ayd_lease_expiries_total Worker leases that expired.\n");
            out.push_str("# TYPE ayd_lease_expiries_total counter\n");
            out.push_str(&format!(
                "ayd_lease_expiries_total {}\n",
                cluster.lease_expiries_total
            ));
        }
        out
    }
}

fn saturation(busy: usize, workers: usize) -> f64 {
    if workers == 0 {
        0.0
    } else {
        busy as f64 / workers as f64
    }
}

/// Appends one histogram in the Prometheus text format: `# HELP`/`# TYPE`,
/// cumulative buckets over [`BUCKET_BOUNDS`], a `+Inf` bucket, `_sum` (the
/// nanosecond tally rendered in seconds) and `_count`.
fn render_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    buckets: &[AtomicU64; BUCKET_BOUNDS.len() + 1],
    sum_nanos: u64,
) {
    out.push_str(&format!("# HELP {name} {help}\n"));
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for (i, bound) in BUCKET_BOUNDS.iter().enumerate() {
        cumulative += buckets[i].load(Ordering::Relaxed);
        out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
    }
    cumulative += buckets[BUCKET_BOUNDS.len()].load(Ordering::Relaxed);
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
    out.push_str(&format!("{name}_sum {}\n", sum_nanos as f64 / 1e9));
    out.push_str(&format!("{name}_count {cumulative}\n"));
}

/// One parsed sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The full sample name (histogram samples keep their `_bucket`/`_sum`/
    /// `_count` suffix).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A typed model of one Prometheus text payload: declared family types plus
/// every sample, in source order. Shared by [`validate_prometheus`], the
/// smoke check and the load generator.
#[derive(Debug, Default)]
pub struct PrometheusText {
    /// `# TYPE` declarations: family name → kind (`counter`/`gauge`/…).
    pub types: BTreeMap<String, String>,
    /// Every sample line, in source order.
    pub samples: Vec<Sample>,
}

impl PrometheusText {
    /// Parses a text payload. Rejects structurally broken lines (missing or
    /// unparsable values, unbalanced label braces); semantic checks live in
    /// [`validate_prometheus`].
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut model = PrometheusText::default();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                let mut words = comment.split_whitespace();
                if words.next() == Some("TYPE") {
                    let name = words.next().ok_or("TYPE line without a family name")?;
                    let kind = words.next().ok_or("TYPE line without a kind")?;
                    model.types.insert(name.to_string(), kind.to_string());
                }
                continue;
            }
            let (name_part, value_part) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("sample without value: {line:?}"))?;
            let value: f64 = value_part
                .parse()
                .map_err(|_| format!("unparsable value in: {line:?}"))?;
            let (name, labels) = match name_part.split_once('{') {
                None => (name_part.to_string(), Vec::new()),
                Some((name, rest)) => {
                    let body = rest
                        .strip_suffix('}')
                        .ok_or_else(|| format!("malformed labels in: {line:?}"))?;
                    (name.to_string(), parse_labels(body, line)?)
                }
            };
            model.samples.push(Sample {
                name,
                labels,
                value,
            });
        }
        Ok(model)
    }

    /// The value of the unlabelled sample named exactly `name`.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    }

    /// Sums every sample named `name` whose labels include `key == value`
    /// (e.g. all statuses of one endpoint's request counter).
    pub fn sum_labeled(&self, name: &str, key: &str, value: &str) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name && s.label(key) == Some(value))
            .map(|s| s.value)
            .sum()
    }

    /// The family a sample belongs to: its name, with the histogram suffix
    /// (`_bucket`/`_sum`/`_count`) stripped when the prefix has a declared
    /// `histogram` type.
    pub fn family_of<'a>(&self, sample_name: &'a str) -> &'a str {
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(prefix) = sample_name.strip_suffix(suffix) {
                if self.types.get(prefix).map(String::as_str) == Some("histogram") {
                    return prefix;
                }
            }
        }
        sample_name
    }
}

fn parse_labels(body: &str, line: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    for pair in body.split(',') {
        let (key, quoted) = pair
            .split_once('=')
            .ok_or_else(|| format!("malformed labels in: {line:?}"))?;
        let value = quoted
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted label value in: {line:?}"))?;
        labels.push((key.to_string(), value.replace("\\\"", "\"")));
    }
    Ok(labels)
}

/// Validates one Prometheus text payload via the typed model:
///
/// - every line parses as a comment or a `name{labels} value` sample;
/// - **every family with samples has a `# TYPE` declaration** (so a counter
///   can never silently ship untyped);
/// - every histogram's `+Inf` bucket matches that same histogram's `_count`
///   (each `<name>_bucket{le="+Inf"}` is paired with its own `<name>_count`,
///   so one well-formed histogram can't mask another broken one);
/// - every sample value is finite, and every `counter`- or `histogram`-typed
///   sample is non-negative (a wrapped gauge decrement or a `NaN` division
///   must fail the scrape, not ship).
///
/// Used by the smoke check and the CI gate (`loadgen --check`).
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    let model = PrometheusText::parse(text)?;
    if model.samples.is_empty() {
        return Err("no samples in metrics payload".to_string());
    }
    let mut inf_buckets: BTreeMap<String, f64> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    for sample in &model.samples {
        let family = model.family_of(&sample.name);
        if !model.types.contains_key(family) {
            return Err(format!("family {family} has samples but no # TYPE line"));
        }
        if !sample.value.is_finite() {
            return Err(format!("sample {} has a non-finite value", sample.name));
        }
        if matches!(
            model.types.get(family).map(String::as_str),
            Some("counter") | Some("histogram")
        ) && sample.value < 0.0
        {
            return Err(format!("monotone sample {} is negative", sample.name));
        }
        if model.types.get(family).map(String::as_str) == Some("histogram") {
            if sample.name.ends_with("_bucket") && sample.label("le") == Some("+Inf") {
                inf_buckets.insert(family.to_string(), sample.value);
            }
            if sample.name.ends_with("_count") {
                counts.insert(family.to_string(), sample.value);
            }
        }
    }
    if inf_buckets.is_empty() {
        return Err("histogram series missing".to_string());
    }
    for (histogram, inf) in &inf_buckets {
        match counts.get(histogram) {
            Some(count) if count == inf => {}
            Some(_) => {
                return Err(format!(
                    "+Inf bucket of {histogram} does not equal its count"
                ))
            }
            None => return Err(format!("{histogram} has buckets but no _count")),
        }
    }
    for histogram in counts.keys() {
        if !inf_buckets.contains_key(histogram) {
            return Err(format!("{histogram} has a _count but no +Inf bucket"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connection_gauges_track_accepts_and_closes() {
        let metrics = Metrics::new();
        metrics.connection_accepted("0");
        metrics.connection_accepted("0");
        metrics.connection_accepted("1");
        metrics.connection_opened();
        assert_eq!(metrics.open_connections(), 4);
        metrics.connection_closed();
        assert_eq!(metrics.open_connections(), 3);
        metrics.observe_readiness_wait(Duration::from_micros(30));
        metrics.observe_readiness_wait(Duration::from_millis(100));
        // One observe so the payload has request samples for the validator.
        metrics.observe("healthz", 200, Duration::from_micros(5));
        let text =
            metrics.render_prometheus(&CacheStats::default(), &GaugeSnapshot::default(), None);
        validate_prometheus(&text).unwrap();
        assert!(text.contains("ayd_open_connections 3\n"));
        assert!(text.contains("ayd_accepts_total{reactor=\"0\"} 2\n"));
        assert!(text.contains("ayd_accepts_total{reactor=\"1\"} 1\n"));
        assert!(text.contains("ayd_accepts_total{reactor=\"blocking\"} 1\n"));
        assert!(text.contains("ayd_readiness_wait_seconds_bucket{le=\"0.0001\"} 1\n"));
        assert!(text.contains("ayd_readiness_wait_seconds_bucket{le=\"0.1\"} 2\n"));
        assert!(text.contains("ayd_readiness_wait_seconds_count 2\n"));
        // The close gauge saturates at zero instead of wrapping.
        for _ in 0..10 {
            metrics.connection_closed();
        }
        assert_eq!(metrics.open_connections(), 0);
    }

    #[test]
    fn validator_rejects_non_finite_and_negative_monotone_samples() {
        let nan = "# TYPE ayd_cache_hit_rate gauge\nayd_cache_hit_rate NaN\n\
                   # TYPE ayd_request_duration_seconds histogram\n\
                   ayd_request_duration_seconds_bucket{le=\"+Inf\"} 1\n\
                   ayd_request_duration_seconds_count 1\n";
        let err = validate_prometheus(nan).unwrap_err();
        assert!(err.contains("non-finite"), "{err}");
        let negative = "# TYPE ayd_accepts_total counter\n\
                        ayd_accepts_total{reactor=\"0\"} -1\n\
                        # TYPE ayd_request_duration_seconds histogram\n\
                        ayd_request_duration_seconds_bucket{le=\"+Inf\"} 1\n\
                        ayd_request_duration_seconds_count 1\n";
        let err = validate_prometheus(negative).unwrap_err();
        assert!(err.contains("negative"), "{err}");
        // A negative gauge is legitimate and passes.
        let gauge = "# TYPE ayd_drift gauge\nayd_drift -2\n\
                     # TYPE ayd_request_duration_seconds histogram\n\
                     ayd_request_duration_seconds_bucket{le=\"+Inf\"} 1\n\
                     ayd_request_duration_seconds_count 1\n";
        validate_prometheus(gauge).unwrap();
    }

    #[test]
    fn observations_land_in_buckets_and_render_cumulatively() {
        let metrics = Metrics::new();
        metrics.connection_opened();
        metrics.observe("optimize", 200, Duration::from_micros(50));
        metrics.observe("optimize", 200, Duration::from_micros(300));
        metrics.observe("optimize", 400, Duration::from_millis(40));
        metrics.observe("metrics", 200, Duration::from_secs(1));
        assert_eq!(metrics.request_count(), 4);
        metrics.observe_cold(Duration::from_micros(80));
        metrics.observe_cold(Duration::from_micros(700));
        metrics.observe_warm(Duration::from_micros(20));
        metrics.observe_search(SearchReport {
            fast: 5,
            fallback: 2,
            brent_iterations: 40,
            fallback_reasons: [0, 2, 0, 0],
        });
        metrics.observe_search(SearchReport {
            fast: 1,
            fallback: 0,
            brent_iterations: 7,
            ..SearchReport::default()
        });
        metrics.request_started("optimize");
        metrics.request_started("optimize");
        metrics.request_finished("optimize");

        let text = metrics.render_prometheus(
            &CacheStats {
                hits: 3,
                misses: 1,
                evictions: 0,
            },
            &GaugeSnapshot {
                conn_queue_depth: 2,
                conn_busy: 3,
                conn_workers: 4,
                jobs_running: 1,
                ..GaugeSnapshot::default()
            },
            None,
        );
        assert!(text.contains("ayd_requests_total{endpoint=\"optimize\",status=\"200\"} 2\n"));
        assert!(text.contains("ayd_requests_total{endpoint=\"optimize\",status=\"400\"} 1\n"));
        assert!(text.contains("ayd_connections_total 1\n"));
        // Cumulative buckets: 1 at ≤100µs, 2 at ≤500µs, 3 at ≤50ms, 4 at +Inf.
        assert!(text.contains("ayd_request_duration_seconds_bucket{le=\"0.0001\"} 1\n"));
        assert!(text.contains("ayd_request_duration_seconds_bucket{le=\"0.0005\"} 2\n"));
        assert!(text.contains("ayd_request_duration_seconds_bucket{le=\"0.05\"} 3\n"));
        assert!(text.contains("ayd_request_duration_seconds_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("ayd_request_duration_seconds_count 4\n"));
        // The cold histogram only sees the two cache-miss evaluations; the
        // warm one only the cache hit.
        assert!(text.contains("ayd_optimize_cold_seconds_bucket{le=\"0.0001\"} 1\n"));
        assert!(text.contains("ayd_optimize_cold_seconds_bucket{le=\"0.001\"} 2\n"));
        assert!(text.contains("ayd_optimize_cold_seconds_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("ayd_optimize_cold_seconds_count 2\n"));
        assert!(text.contains("ayd_optimize_warm_seconds_count 1\n"));
        // Search counters accumulate across reports.
        assert!(text.contains("ayd_search_fast_total 6\n"));
        assert!(text.contains("ayd_search_fallback_total 2\n"));
        assert!(text.contains("ayd_search_brent_iterations_total 47\n"));
        assert!(text.contains("ayd_search_fallback_reason_total{reason=\"non-finite-value\"} 2\n"));
        assert!(text.contains("ayd_search_fallback_reason_total{reason=\"missing-seed\"} 0\n"));
        assert!(text.contains("ayd_cache_hit_rate 0.75\n"));
        // Gauges: in-flight, pool load and job states.
        assert!(text.contains("ayd_in_flight_requests{endpoint=\"optimize\"} 1\n"));
        assert!(text.contains("ayd_pool_queue_depth{pool=\"connection\"} 2\n"));
        assert!(text.contains("ayd_pool_busy_workers{pool=\"connection\"} 3\n"));
        assert!(text.contains("ayd_pool_saturation{pool=\"connection\"} 0.75\n"));
        assert!(text.contains("ayd_pool_saturation{pool=\"compute\"} 0\n"));
        assert!(text.contains("ayd_sweep_jobs{state=\"running\"} 1\n"));
        assert!(text.contains("ayd_sweep_jobs{state=\"cancelled\"} 0\n"));
        validate_prometheus(&text).unwrap();
    }

    #[test]
    fn cluster_families_render_only_on_a_coordinator() {
        let metrics = Metrics::new();
        metrics.observe("healthz", 200, Duration::from_micros(5));
        let standalone =
            metrics.render_prometheus(&CacheStats::default(), &GaugeSnapshot::default(), None);
        assert!(!standalone.contains("ayd_workers"));
        assert!(!standalone.contains("ayd_shards_dispatched_total"));
        let cluster = ClusterStats {
            workers_alive: 2,
            workers_suspect: 1,
            workers_dead: 3,
            shards_dispatched_total: 9,
            shard_reissues_total: 4,
            lease_expiries_total: 5,
        };
        let text = metrics.render_prometheus(
            &CacheStats::default(),
            &GaugeSnapshot::default(),
            Some(&cluster),
        );
        validate_prometheus(&text).unwrap();
        assert!(text.contains("ayd_workers{state=\"alive\"} 2\n"));
        assert!(text.contains("ayd_workers{state=\"suspect\"} 1\n"));
        assert!(text.contains("ayd_workers{state=\"dead\"} 3\n"));
        assert!(text.contains("ayd_shards_dispatched_total 9\n"));
        assert!(text.contains("ayd_shard_reissues_total 4\n"));
        assert!(text.contains("ayd_lease_expiries_total 5\n"));
    }

    #[test]
    fn in_flight_gauge_saturates_at_zero() {
        let metrics = Metrics::new();
        metrics.request_finished("optimize");
        metrics.request_started("optimize");
        metrics.request_finished("optimize");
        let text =
            metrics.render_prometheus(&CacheStats::default(), &GaugeSnapshot::default(), None);
        assert!(text.contains("ayd_in_flight_requests{endpoint=\"optimize\"} 0\n"));
    }

    #[test]
    fn typed_model_parses_names_labels_and_values() {
        let text = "# HELP ayd_requests_total Requests.\n\
                    # TYPE ayd_requests_total counter\n\
                    ayd_requests_total{endpoint=\"optimize\",status=\"200\"} 7\n\
                    ayd_requests_total{endpoint=\"optimize\",status=\"400\"} 2\n\
                    ayd_requests_total{endpoint=\"metrics\",status=\"200\"} 1\n\
                    # TYPE ayd_optimize_cold_seconds histogram\n\
                    ayd_optimize_cold_seconds_bucket{le=\"+Inf\"} 3\n\
                    ayd_optimize_cold_seconds_sum 0.25\n\
                    ayd_optimize_cold_seconds_count 3\n";
        let model = PrometheusText::parse(text).unwrap();
        assert_eq!(model.types.get("ayd_requests_total").unwrap(), "counter");
        assert_eq!(model.value("ayd_optimize_cold_seconds_count"), Some(3.0));
        assert_eq!(model.value("ayd_optimize_cold_seconds_sum"), Some(0.25));
        assert_eq!(
            model.sum_labeled("ayd_requests_total", "endpoint", "optimize"),
            9.0
        );
        assert_eq!(
            model.family_of("ayd_optimize_cold_seconds_bucket"),
            "ayd_optimize_cold_seconds"
        );
        // A _count suffix with no histogram TYPE is its own family.
        assert_eq!(model.family_of("ayd_requests_total"), "ayd_requests_total");
        let inf = model
            .samples
            .iter()
            .find(|s| s.name == "ayd_optimize_cold_seconds_bucket")
            .unwrap();
        assert_eq!(inf.label("le"), Some("+Inf"));
    }

    #[test]
    fn validator_rejects_malformed_payloads() {
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("just words\n").is_err());
        assert!(validate_prometheus("metric_without_value\n").is_err());
        let truncated = "# TYPE ayd_request_duration_seconds histogram\n\
                         ayd_request_duration_seconds_bucket{le=\"+Inf\"} 4\n\
                         ayd_request_duration_seconds_count 5\n";
        assert!(validate_prometheus(truncated).is_err());
    }

    #[test]
    fn validator_requires_a_type_line_per_family() {
        // An untyped counter next to a well-formed histogram must fail.
        let untyped = "ayd_search_fast_total 6\n\
                       # TYPE ayd_request_duration_seconds histogram\n\
                       ayd_request_duration_seconds_bucket{le=\"+Inf\"} 4\n\
                       ayd_request_duration_seconds_count 4\n";
        let err = validate_prometheus(untyped).unwrap_err();
        assert!(err.contains("ayd_search_fast_total"), "{err}");
        assert!(err.contains("no # TYPE"), "{err}");

        let typed = "# TYPE ayd_search_fast_total counter\n\
                     ayd_search_fast_total 6\n\
                     # TYPE ayd_request_duration_seconds histogram\n\
                     ayd_request_duration_seconds_bucket{le=\"+Inf\"} 4\n\
                     ayd_request_duration_seconds_count 4\n";
        validate_prometheus(typed).unwrap();
    }

    #[test]
    fn validator_pairs_every_histogram_with_its_own_count() {
        // A consistent histogram must not mask a broken second one: each
        // +Inf bucket is checked against its *own* _count.
        let types = "# TYPE ayd_request_duration_seconds histogram\n\
                     # TYPE ayd_optimize_cold_seconds histogram\n";
        let one_good_one_broken = format!(
            "{types}ayd_request_duration_seconds_bucket{{le=\"+Inf\"}} 4\n\
             ayd_request_duration_seconds_count 4\n\
             ayd_optimize_cold_seconds_bucket{{le=\"+Inf\"}} 2\n\
             ayd_optimize_cold_seconds_count 3\n"
        );
        let err = validate_prometheus(&one_good_one_broken).unwrap_err();
        assert!(err.contains("ayd_optimize_cold_seconds"), "{err}");

        let missing_count = format!(
            "{types}ayd_request_duration_seconds_bucket{{le=\"+Inf\"}} 4\n\
             ayd_request_duration_seconds_count 4\n\
             ayd_optimize_cold_seconds_bucket{{le=\"+Inf\"}} 2\n"
        );
        let err = validate_prometheus(&missing_count).unwrap_err();
        assert!(err.contains("no _count"), "{err}");

        let orphan_count = format!(
            "{types}ayd_request_duration_seconds_bucket{{le=\"+Inf\"}} 4\n\
             ayd_request_duration_seconds_count 4\n\
             ayd_optimize_cold_seconds_count 2\n"
        );
        let err = validate_prometheus(&orphan_count).unwrap_err();
        assert!(err.contains("no +Inf bucket"), "{err}");

        let both_good = format!(
            "{types}ayd_request_duration_seconds_bucket{{le=\"+Inf\"}} 4\n\
             ayd_request_duration_seconds_count 4\n\
             ayd_optimize_cold_seconds_bucket{{le=\"+Inf\"}} 2\n\
             ayd_optimize_cold_seconds_count 2\n"
        );
        validate_prometheus(&both_good).unwrap();
    }

    /// Satellite: 8 threads hammer one registry concurrently; afterwards the
    /// counter totals and every histogram's `_count`/`_sum` must be exactly
    /// consistent with what was observed (no lost updates, no torn renders).
    #[test]
    fn concurrent_observations_stay_consistent() {
        use std::sync::Arc;
        const THREADS: usize = 8;
        const PER_THREAD: usize = 500;
        let metrics = Arc::new(Metrics::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let metrics = Arc::clone(&metrics);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        let endpoint = if (t + i) % 2 == 0 {
                            "optimize"
                        } else {
                            "batch"
                        };
                        let status = if i % 7 == 0 { 400 } else { 200 };
                        metrics.request_started(endpoint);
                        metrics.observe(endpoint, status, Duration::from_micros(i as u64));
                        metrics.observe_cold(Duration::from_micros((i * 3) as u64));
                        metrics.observe_warm(Duration::from_micros(2));
                        metrics.observe_search(SearchReport {
                            fast: 1,
                            fallback: (i % 3 == 0) as u64,
                            brent_iterations: 5,
                            fallback_reasons: [(i % 3 == 0) as u64, 0, 0, 0],
                        });
                        metrics.request_finished(endpoint);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let total = (THREADS * PER_THREAD) as f64;
        let text =
            metrics.render_prometheus(&CacheStats::default(), &GaugeSnapshot::default(), None);
        validate_prometheus(&text).unwrap();
        let model = PrometheusText::parse(&text).unwrap();
        // Counter totals: the by-route breakdown sums to the request count.
        let optimize = model.sum_labeled("ayd_requests_total", "endpoint", "optimize");
        let batch = model.sum_labeled("ayd_requests_total", "endpoint", "batch");
        assert_eq!(optimize + batch, total);
        assert_eq!(metrics.request_count() as f64, total);
        // Histogram consistency: _count matches the observation count and
        // _sum matches the exact latency tally (integer nanoseconds).
        assert_eq!(
            model.value("ayd_request_duration_seconds_count"),
            Some(total)
        );
        assert_eq!(model.value("ayd_optimize_cold_seconds_count"), Some(total));
        assert_eq!(model.value("ayd_optimize_warm_seconds_count"), Some(total));
        let per_thread_nanos: u64 = (0..PER_THREAD as u64).map(|i| i * 1_000).sum();
        let expected_sum = (THREADS as u64 * per_thread_nanos) as f64 / 1e9;
        assert!(
            (model.value("ayd_request_duration_seconds_sum").unwrap() - expected_sum).abs() < 1e-12,
            "request _sum drifted"
        );
        assert_eq!(
            model.value("ayd_optimize_warm_seconds_sum"),
            Some(total * 2_000.0 / 1e9)
        );
        // Search tallies: one fast per iteration, every third a fallback.
        assert_eq!(model.value("ayd_search_fast_total"), Some(total));
        let fallbacks = (0..PER_THREAD).filter(|i| i % 3 == 0).count() * THREADS;
        assert_eq!(
            model.value("ayd_search_fallback_total"),
            Some(fallbacks as f64)
        );
        assert_eq!(
            model.sum_labeled("ayd_search_fallback_reason_total", "reason", "missing-seed"),
            fallbacks as f64
        );
        assert_eq!(
            model.value("ayd_search_brent_iterations_total"),
            Some(total * 5.0)
        );
        // All in-flight gauges drained back to zero.
        assert_eq!(
            model.sum_labeled("ayd_in_flight_requests", "endpoint", "optimize"),
            0.0
        );
        assert_eq!(
            model.sum_labeled("ayd_in_flight_requests", "endpoint", "batch"),
            0.0
        );
    }
}
