//! Request counters and a latency histogram, rendered as Prometheus text.
//!
//! Counters are lock-free atomics; the per-endpoint/status breakdown lives in
//! a small mutexed map (the handler path touches it once per request, which
//! is noise next to an optimiser evaluation). Rendering follows the
//! Prometheus text exposition format, version `0.0.4` — `# HELP`/`# TYPE`
//! lines, cumulative histogram buckets, and a `+Inf` bucket equal to
//! `_count`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use ayd_sweep::CacheStats;

/// Upper bounds (in seconds) of the latency histogram buckets.
const BUCKET_BOUNDS: [f64; 11] = [
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
];

/// Process-wide request metrics.
#[derive(Default)]
pub struct Metrics {
    /// Per-(endpoint, status) request counts.
    by_route: Mutex<BTreeMap<(&'static str, u16), u64>>,
    /// Cumulative request count.
    requests: AtomicU64,
    /// Total connections accepted.
    connections: AtomicU64,
    /// Latency histogram bucket counts (non-cumulative; bucket `i` counts
    /// requests with latency ≤ `BUCKET_BOUNDS[i]`, the last slot is overflow).
    buckets: [AtomicU64; BUCKET_BOUNDS.len() + 1],
    /// Sum of request latencies in nanoseconds.
    latency_sum_nanos: AtomicU64,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one accepted connection.
    pub fn connection_opened(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one served request: the (static) endpoint label, the response
    /// status and the handling latency.
    pub fn observe(&self, endpoint: &'static str, status: u16, latency: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let seconds = latency.as_secs_f64();
        let slot = BUCKET_BOUNDS
            .iter()
            .position(|&bound| seconds <= bound)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_nanos
            .fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
        *self
            .by_route
            .lock()
            .expect("metrics map poisoned")
            .entry((endpoint, status))
            .or_insert(0) += 1;
    }

    /// Total requests observed so far.
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Renders every metric in the Prometheus text exposition format,
    /// including the shared evaluation-cache counters.
    pub fn render_prometheus(&self, cache: &CacheStats) -> String {
        let mut out = String::with_capacity(2048);

        out.push_str("# HELP ayd_requests_total Requests served, by endpoint and status.\n");
        out.push_str("# TYPE ayd_requests_total counter\n");
        for ((endpoint, status), count) in
            self.by_route.lock().expect("metrics map poisoned").iter()
        {
            out.push_str(&format!(
                "ayd_requests_total{{endpoint=\"{endpoint}\",status=\"{status}\"}} {count}\n"
            ));
        }

        out.push_str("# HELP ayd_connections_total Connections accepted.\n");
        out.push_str("# TYPE ayd_connections_total counter\n");
        out.push_str(&format!(
            "ayd_connections_total {}\n",
            self.connections.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP ayd_request_duration_seconds Request handling latency.\n");
        out.push_str("# TYPE ayd_request_duration_seconds histogram\n");
        let mut cumulative = 0u64;
        for (i, bound) in BUCKET_BOUNDS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "ayd_request_duration_seconds_bucket{{le=\"{bound}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.buckets[BUCKET_BOUNDS.len()].load(Ordering::Relaxed);
        out.push_str(&format!(
            "ayd_request_duration_seconds_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!(
            "ayd_request_duration_seconds_sum {}\n",
            self.latency_sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
        ));
        out.push_str(&format!(
            "ayd_request_duration_seconds_count {cumulative}\n"
        ));

        out.push_str("# HELP ayd_cache_hits_total Evaluation-cache hits.\n");
        out.push_str("# TYPE ayd_cache_hits_total counter\n");
        out.push_str(&format!("ayd_cache_hits_total {}\n", cache.hits));
        out.push_str("# HELP ayd_cache_misses_total Evaluation-cache misses.\n");
        out.push_str("# TYPE ayd_cache_misses_total counter\n");
        out.push_str(&format!("ayd_cache_misses_total {}\n", cache.misses));
        out.push_str("# HELP ayd_cache_evictions_total Evaluation-cache evictions.\n");
        out.push_str("# TYPE ayd_cache_evictions_total counter\n");
        out.push_str(&format!("ayd_cache_evictions_total {}\n", cache.evictions));
        out.push_str("# HELP ayd_cache_hit_rate Fraction of lookups answered from the cache.\n");
        out.push_str("# TYPE ayd_cache_hit_rate gauge\n");
        out.push_str(&format!("ayd_cache_hit_rate {}\n", cache.hit_rate()));
        out
    }
}

/// Validates one Prometheus text payload: every non-comment line must be
/// `name{labels} value` or `name value` with a parsable float value, and the
/// `+Inf` histogram bucket must match the histogram count. Used by the smoke
/// check and the CI gate (`loadgen --check`).
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    let mut inf_bucket: Option<f64> = None;
    let mut histogram_count: Option<f64> = None;
    let mut samples = 0usize;
    for line in text.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("sample without value: {line:?}"))?;
        let value: f64 = value_part
            .parse()
            .map_err(|_| format!("unparsable value in: {line:?}"))?;
        if name_part.contains('{') && !name_part.ends_with('}') {
            return Err(format!("malformed labels in: {line:?}"));
        }
        if name_part.contains("le=\"+Inf\"") {
            inf_bucket = Some(value);
        }
        if name_part == "ayd_request_duration_seconds_count" {
            histogram_count = Some(value);
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in metrics payload".to_string());
    }
    match (inf_bucket, histogram_count) {
        (Some(inf), Some(count)) if inf == count => Ok(()),
        (Some(_), Some(_)) => Err("+Inf bucket does not equal histogram count".to_string()),
        _ => Err("histogram series missing".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_buckets_and_render_cumulatively() {
        let metrics = Metrics::new();
        metrics.connection_opened();
        metrics.observe("optimize", 200, Duration::from_micros(50));
        metrics.observe("optimize", 200, Duration::from_micros(300));
        metrics.observe("optimize", 400, Duration::from_millis(40));
        metrics.observe("metrics", 200, Duration::from_secs(1));
        assert_eq!(metrics.request_count(), 4);

        let text = metrics.render_prometheus(&CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        });
        assert!(text.contains("ayd_requests_total{endpoint=\"optimize\",status=\"200\"} 2\n"));
        assert!(text.contains("ayd_requests_total{endpoint=\"optimize\",status=\"400\"} 1\n"));
        assert!(text.contains("ayd_connections_total 1\n"));
        // Cumulative buckets: 1 at ≤100µs, 2 at ≤500µs, 3 at ≤50ms, 4 at +Inf.
        assert!(text.contains("ayd_request_duration_seconds_bucket{le=\"0.0001\"} 1\n"));
        assert!(text.contains("ayd_request_duration_seconds_bucket{le=\"0.0005\"} 2\n"));
        assert!(text.contains("ayd_request_duration_seconds_bucket{le=\"0.05\"} 3\n"));
        assert!(text.contains("ayd_request_duration_seconds_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("ayd_request_duration_seconds_count 4\n"));
        assert!(text.contains("ayd_cache_hit_rate 0.75\n"));
        validate_prometheus(&text).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_payloads() {
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("just words\n").is_err());
        assert!(validate_prometheus("metric_without_value\n").is_err());
        let truncated = "ayd_request_duration_seconds_bucket{le=\"+Inf\"} 4\n\
                         ayd_request_duration_seconds_count 5\n";
        assert!(validate_prometheus(truncated).is_err());
    }
}
