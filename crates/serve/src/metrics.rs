//! Request counters and a latency histogram, rendered as Prometheus text.
//!
//! Counters are lock-free atomics; the per-endpoint/status breakdown lives in
//! a small mutexed map (the handler path touches it once per request, which
//! is noise next to an optimiser evaluation). Rendering follows the
//! Prometheus text exposition format, version `0.0.4` — `# HELP`/`# TYPE`
//! lines, cumulative histogram buckets, and a `+Inf` bucket equal to
//! `_count`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use ayd_sweep::{CacheStats, SearchReport};

/// Upper bounds (in seconds) of the latency histogram buckets.
const BUCKET_BOUNDS: [f64; 11] = [
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
];

/// Process-wide request metrics.
#[derive(Default)]
pub struct Metrics {
    /// Per-(endpoint, status) request counts.
    by_route: Mutex<BTreeMap<(&'static str, u16), u64>>,
    /// Cumulative request count.
    requests: AtomicU64,
    /// Total connections accepted.
    connections: AtomicU64,
    /// Latency histogram bucket counts (non-cumulative; bucket `i` counts
    /// requests with latency ≤ `BUCKET_BOUNDS[i]`, the last slot is overflow).
    buckets: [AtomicU64; BUCKET_BOUNDS.len() + 1],
    /// Sum of request latencies in nanoseconds.
    latency_sum_nanos: AtomicU64,
    /// Cold-evaluation histogram buckets: latencies of `/v1/optimize`
    /// evaluations that actually ran the optimiser (cache misses), same
    /// bounds as the request histogram.
    cold_buckets: [AtomicU64; BUCKET_BOUNDS.len() + 1],
    /// Sum of cold-evaluation latencies in nanoseconds.
    cold_sum_nanos: AtomicU64,
    /// Scalar searches answered by the warm-started fast path.
    search_fast: AtomicU64,
    /// Scalar searches that fell back to the reference search.
    search_fallback: AtomicU64,
}

/// Non-cumulative bucket slot of a latency (last slot is overflow).
fn bucket_slot(seconds: f64) -> usize {
    BUCKET_BOUNDS
        .iter()
        .position(|&bound| seconds <= bound)
        .unwrap_or(BUCKET_BOUNDS.len())
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one accepted connection.
    pub fn connection_opened(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one served request: the (static) endpoint label, the response
    /// status and the handling latency.
    pub fn observe(&self, endpoint: &'static str, status: u16, latency: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.buckets[bucket_slot(latency.as_secs_f64())].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_nanos
            .fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
        *self
            .by_route
            .lock()
            .expect("metrics map poisoned")
            .entry((endpoint, status))
            .or_insert(0) += 1;
    }

    /// Records one **cold** optimiser evaluation: an `/v1/optimize` query
    /// that missed the cache (or ran uncached) and therefore paid for a
    /// numerical search.
    pub fn observe_cold(&self, latency: Duration) {
        self.cold_buckets[bucket_slot(latency.as_secs_f64())].fetch_add(1, Ordering::Relaxed);
        self.cold_sum_nanos
            .fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Accumulates the fast/fallback tallies of one batch of scalar searches.
    pub fn observe_search(&self, report: SearchReport) {
        if report.fast > 0 {
            self.search_fast.fetch_add(report.fast, Ordering::Relaxed);
        }
        if report.fallback > 0 {
            self.search_fallback
                .fetch_add(report.fallback, Ordering::Relaxed);
        }
    }

    /// Total requests observed so far.
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Renders every metric in the Prometheus text exposition format,
    /// including the shared evaluation-cache counters.
    pub fn render_prometheus(&self, cache: &CacheStats) -> String {
        let mut out = String::with_capacity(2048);

        out.push_str("# HELP ayd_requests_total Requests served, by endpoint and status.\n");
        out.push_str("# TYPE ayd_requests_total counter\n");
        for ((endpoint, status), count) in
            self.by_route.lock().expect("metrics map poisoned").iter()
        {
            out.push_str(&format!(
                "ayd_requests_total{{endpoint=\"{endpoint}\",status=\"{status}\"}} {count}\n"
            ));
        }

        out.push_str("# HELP ayd_connections_total Connections accepted.\n");
        out.push_str("# TYPE ayd_connections_total counter\n");
        out.push_str(&format!(
            "ayd_connections_total {}\n",
            self.connections.load(Ordering::Relaxed)
        ));

        render_histogram(
            &mut out,
            "ayd_request_duration_seconds",
            "Request handling latency.",
            &self.buckets,
            self.latency_sum_nanos.load(Ordering::Relaxed),
        );
        render_histogram(
            &mut out,
            "ayd_optimize_cold_seconds",
            "Cold (cache-miss) optimiser evaluation latency of /v1/optimize.",
            &self.cold_buckets,
            self.cold_sum_nanos.load(Ordering::Relaxed),
        );

        out.push_str("# HELP ayd_search_fast_total Scalar searches answered by the warm-started fast path.\n");
        out.push_str("# TYPE ayd_search_fast_total counter\n");
        out.push_str(&format!(
            "ayd_search_fast_total {}\n",
            self.search_fast.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP ayd_search_fallback_total Scalar searches demoted to the reference search.\n",
        );
        out.push_str("# TYPE ayd_search_fallback_total counter\n");
        out.push_str(&format!(
            "ayd_search_fallback_total {}\n",
            self.search_fallback.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP ayd_cache_hits_total Evaluation-cache hits.\n");
        out.push_str("# TYPE ayd_cache_hits_total counter\n");
        out.push_str(&format!("ayd_cache_hits_total {}\n", cache.hits));
        out.push_str("# HELP ayd_cache_misses_total Evaluation-cache misses.\n");
        out.push_str("# TYPE ayd_cache_misses_total counter\n");
        out.push_str(&format!("ayd_cache_misses_total {}\n", cache.misses));
        out.push_str("# HELP ayd_cache_evictions_total Evaluation-cache evictions.\n");
        out.push_str("# TYPE ayd_cache_evictions_total counter\n");
        out.push_str(&format!("ayd_cache_evictions_total {}\n", cache.evictions));
        out.push_str("# HELP ayd_cache_hit_rate Fraction of lookups answered from the cache.\n");
        out.push_str("# TYPE ayd_cache_hit_rate gauge\n");
        out.push_str(&format!("ayd_cache_hit_rate {}\n", cache.hit_rate()));
        out
    }
}

/// Appends one histogram in the Prometheus text format: `# HELP`/`# TYPE`,
/// cumulative buckets over [`BUCKET_BOUNDS`], a `+Inf` bucket, `_sum` (the
/// nanosecond tally rendered in seconds) and `_count`.
fn render_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    buckets: &[AtomicU64; BUCKET_BOUNDS.len() + 1],
    sum_nanos: u64,
) {
    out.push_str(&format!("# HELP {name} {help}\n"));
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for (i, bound) in BUCKET_BOUNDS.iter().enumerate() {
        cumulative += buckets[i].load(Ordering::Relaxed);
        out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
    }
    cumulative += buckets[BUCKET_BOUNDS.len()].load(Ordering::Relaxed);
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
    out.push_str(&format!("{name}_sum {}\n", sum_nanos as f64 / 1e9));
    out.push_str(&format!("{name}_count {cumulative}\n"));
}

/// Validates one Prometheus text payload: every non-comment line must be
/// `name{labels} value` or `name value` with a parsable float value, and
/// **every** histogram's `+Inf` bucket must match that same histogram's
/// `_count` (each `<name>_bucket{le="+Inf"}` is paired with its own
/// `<name>_count`, so one well-formed histogram can't mask another broken
/// one). Used by the smoke check and the CI gate (`loadgen --check`).
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    let mut inf_buckets: BTreeMap<String, f64> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    let mut samples = 0usize;
    for line in text.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("sample without value: {line:?}"))?;
        let value: f64 = value_part
            .parse()
            .map_err(|_| format!("unparsable value in: {line:?}"))?;
        if name_part.contains('{') && !name_part.ends_with('}') {
            return Err(format!("malformed labels in: {line:?}"));
        }
        let bare_name = name_part.split('{').next().unwrap_or(name_part);
        if name_part.contains("le=\"+Inf\"") {
            if let Some(histogram) = bare_name.strip_suffix("_bucket") {
                inf_buckets.insert(histogram.to_string(), value);
            }
        }
        if let Some(histogram) = bare_name.strip_suffix("_count") {
            counts.insert(histogram.to_string(), value);
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in metrics payload".to_string());
    }
    if inf_buckets.is_empty() {
        return Err("histogram series missing".to_string());
    }
    for (histogram, inf) in &inf_buckets {
        match counts.get(histogram) {
            Some(count) if count == inf => {}
            Some(_) => {
                return Err(format!(
                    "+Inf bucket of {histogram} does not equal its count"
                ))
            }
            None => return Err(format!("{histogram} has buckets but no _count")),
        }
    }
    for histogram in counts.keys() {
        if !inf_buckets.contains_key(histogram) {
            return Err(format!("{histogram} has a _count but no +Inf bucket"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_buckets_and_render_cumulatively() {
        let metrics = Metrics::new();
        metrics.connection_opened();
        metrics.observe("optimize", 200, Duration::from_micros(50));
        metrics.observe("optimize", 200, Duration::from_micros(300));
        metrics.observe("optimize", 400, Duration::from_millis(40));
        metrics.observe("metrics", 200, Duration::from_secs(1));
        assert_eq!(metrics.request_count(), 4);
        metrics.observe_cold(Duration::from_micros(80));
        metrics.observe_cold(Duration::from_micros(700));
        metrics.observe_search(SearchReport {
            fast: 5,
            fallback: 2,
        });
        metrics.observe_search(SearchReport {
            fast: 1,
            fallback: 0,
        });

        let text = metrics.render_prometheus(&CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        });
        assert!(text.contains("ayd_requests_total{endpoint=\"optimize\",status=\"200\"} 2\n"));
        assert!(text.contains("ayd_requests_total{endpoint=\"optimize\",status=\"400\"} 1\n"));
        assert!(text.contains("ayd_connections_total 1\n"));
        // Cumulative buckets: 1 at ≤100µs, 2 at ≤500µs, 3 at ≤50ms, 4 at +Inf.
        assert!(text.contains("ayd_request_duration_seconds_bucket{le=\"0.0001\"} 1\n"));
        assert!(text.contains("ayd_request_duration_seconds_bucket{le=\"0.0005\"} 2\n"));
        assert!(text.contains("ayd_request_duration_seconds_bucket{le=\"0.05\"} 3\n"));
        assert!(text.contains("ayd_request_duration_seconds_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("ayd_request_duration_seconds_count 4\n"));
        // The cold histogram only sees the two cache-miss evaluations.
        assert!(text.contains("ayd_optimize_cold_seconds_bucket{le=\"0.0001\"} 1\n"));
        assert!(text.contains("ayd_optimize_cold_seconds_bucket{le=\"0.001\"} 2\n"));
        assert!(text.contains("ayd_optimize_cold_seconds_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("ayd_optimize_cold_seconds_count 2\n"));
        // Search counters accumulate across reports.
        assert!(text.contains("ayd_search_fast_total 6\n"));
        assert!(text.contains("ayd_search_fallback_total 2\n"));
        assert!(text.contains("ayd_cache_hit_rate 0.75\n"));
        validate_prometheus(&text).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_payloads() {
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("just words\n").is_err());
        assert!(validate_prometheus("metric_without_value\n").is_err());
        let truncated = "ayd_request_duration_seconds_bucket{le=\"+Inf\"} 4\n\
                         ayd_request_duration_seconds_count 5\n";
        assert!(validate_prometheus(truncated).is_err());
    }

    #[test]
    fn validator_pairs_every_histogram_with_its_own_count() {
        // A consistent histogram must not mask a broken second one: each
        // +Inf bucket is checked against its *own* _count.
        let one_good_one_broken = "ayd_request_duration_seconds_bucket{le=\"+Inf\"} 4\n\
                                   ayd_request_duration_seconds_count 4\n\
                                   ayd_optimize_cold_seconds_bucket{le=\"+Inf\"} 2\n\
                                   ayd_optimize_cold_seconds_count 3\n";
        let err = validate_prometheus(one_good_one_broken).unwrap_err();
        assert!(err.contains("ayd_optimize_cold_seconds"), "{err}");

        let missing_count = "ayd_request_duration_seconds_bucket{le=\"+Inf\"} 4\n\
                             ayd_request_duration_seconds_count 4\n\
                             ayd_optimize_cold_seconds_bucket{le=\"+Inf\"} 2\n";
        let err = validate_prometheus(missing_count).unwrap_err();
        assert!(err.contains("no _count"), "{err}");

        let orphan_count = "ayd_request_duration_seconds_bucket{le=\"+Inf\"} 4\n\
                            ayd_request_duration_seconds_count 4\n\
                            ayd_optimize_cold_seconds_count 2\n";
        let err = validate_prometheus(orphan_count).unwrap_err();
        assert!(err.contains("no +Inf bucket"), "{err}");

        let both_good = "ayd_request_duration_seconds_bucket{le=\"+Inf\"} 4\n\
                         ayd_request_duration_seconds_count 4\n\
                         ayd_optimize_cold_seconds_bucket{le=\"+Inf\"} 2\n\
                         ayd_optimize_cold_seconds_count 2\n";
        validate_prometheus(both_good).unwrap();
    }
}
