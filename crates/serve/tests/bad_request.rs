//! Structured 400 contract of `/v1/optimize` (and `/v1/batch`): invalid model
//! parameters come back as `{"error", "field", "reason"}` JSON naming the
//! offending request field, not as a generic error string.

use std::sync::Arc;

use ayd_serve::api::route;
use ayd_serve::{AppState, Json, Request, ServerConfig};

fn state() -> Arc<AppState> {
    AppState::new(&ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    })
}

fn post(target: &str, body: &str) -> Request {
    Request {
        method: "POST".to_string(),
        target: target.to_string(),
        http1_0: false,
        headers: Vec::new(),
        body: body.as_bytes().to_vec(),
    }
}

/// Routes a body to `/v1/optimize`, expects a 400 and returns the parsed
/// error document.
fn optimize_400(state: &Arc<AppState>, body: &str) -> Json {
    let (_, response) = route(state, &post("/v1/optimize", body));
    assert_eq!(response.status, 400, "body: {body}");
    assert_eq!(response.content_type, "application/json");
    Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap()
}

fn field_of(doc: &Json) -> &str {
    doc.get("field").and_then(Json::as_str).unwrap_or_else(|| {
        panic!("no 'field' in {doc:?}");
    })
}

fn reason_of(doc: &Json) -> &str {
    doc.get("reason").and_then(Json::as_str).expect("reason")
}

#[test]
fn invalid_alpha_names_the_field() {
    let state = state();
    for body in [r#"{"alpha":1.5}"#, r#"{"alpha":-0.1}"#] {
        let doc = optimize_400(&state, body);
        assert_eq!(field_of(&doc), "alpha", "{doc:?}");
        assert!(reason_of(&doc).contains("[0, 1]"), "{doc:?}");
        // Back-compat: the legacy "error" key carries the same message.
        assert_eq!(
            doc.get("error").and_then(Json::as_str).unwrap(),
            reason_of(&doc)
        );
    }
}

#[test]
fn invalid_sigma_names_the_field() {
    let state = state();
    for sigma in ["0", "1.5", "-0.2"] {
        let doc = optimize_400(
            &state,
            &format!(r#"{{"profile":{{"kind":"powerlaw","sigma":{sigma}}}}}"#),
        );
        assert_eq!(field_of(&doc), "sigma", "{doc:?}");
        assert!(reason_of(&doc).contains("sigma"), "{doc:?}");
    }
}

#[test]
fn profile_shape_errors_name_the_profile_field() {
    let state = state();
    for body in [
        r#"{"profile":"bogus:0.5"}"#,
        r#"{"profile":"amdahl"}"#,
        r#"{"profile":{"kind":"perfect","alpha":0.1}}"#,
        r#"{"profile":{"kind":"powerlaw","alpha":0.8}}"#,
        r#"{"profile":{"alpha":0.1}}"#,
        r#"{"profile":42}"#,
        r#"{"alpha":0.1,"profile":"perfect"}"#,
    ] {
        let doc = optimize_400(&state, body);
        assert_eq!(field_of(&doc), "profile", "body: {body} → {doc:?}");
    }
}

#[test]
fn wrong_parameter_key_reports_the_key_mismatch_not_a_phantom_field() {
    // An out-of-range value under the wrong key must report the key mismatch
    // ('powerlaw' takes 'sigma'), not attribute the error to a 'sigma' field
    // the request never contained.
    let state = state();
    let doc = optimize_400(&state, r#"{"profile":{"kind":"powerlaw","alpha":1.7}}"#);
    assert_eq!(field_of(&doc), "profile", "{doc:?}");
    assert!(
        reason_of(&doc).contains("takes 'sigma', not 'alpha'"),
        "{doc:?}"
    );
}

#[test]
fn sweep_bodies_attribute_their_own_fields() {
    let state = state();
    let sweep_400 = |body: &str| {
        let (_, response) = route(&state, &post("/v1/sweep", body));
        assert_eq!(response.status, 400, "body: {body}");
        Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap()
    };
    let doc = sweep_400(r#"{"alphas":[0.1,1.5]}"#);
    assert_eq!(field_of(&doc), "alphas", "{doc:?}");
    assert!(reason_of(&doc).contains("[0, 1]"), "{doc:?}");
    let doc = sweep_400(r#"{"profiles":["bogus:0.5"]}"#);
    assert_eq!(field_of(&doc), "profiles", "{doc:?}");
    let doc = sweep_400(r#"{"profiles":[{"kind":"powerlaw","sigma":0}]}"#);
    assert_eq!(field_of(&doc), "sigma", "{doc:?}");
    let doc = sweep_400(r#"{"alphas":[0.1],"profiles":["perfect"]}"#);
    assert_eq!(field_of(&doc), "profiles", "{doc:?}");
}

#[test]
fn other_model_parameters_are_attributed_too() {
    let state = state();
    let doc = optimize_400(&state, r#"{"lambda_ind":0}"#);
    assert_eq!(field_of(&doc), "lambda_ind", "{doc:?}");
    let doc = optimize_400(&state, r#"{"downtime":-5}"#);
    assert_eq!(field_of(&doc), "downtime", "{doc:?}");
    let doc = optimize_400(&state, r#"{"processors":-1}"#);
    assert_eq!(field_of(&doc), "processors", "{doc:?}");
    let doc = optimize_400(&state, r#"{"platform":"Nope"}"#);
    assert_eq!(field_of(&doc), "platform", "{doc:?}");
}

#[test]
fn batch_errors_keep_the_field_and_name_the_query() {
    let state = state();
    let (_, response) = route(
        &state,
        &post("/v1/batch", r#"{"queries":[{"scenario":1},{"alpha":7}]}"#),
    );
    assert_eq!(response.status, 400);
    let doc = Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
    assert_eq!(field_of(&doc), "alpha");
    assert!(reason_of(&doc).starts_with("query 1: "), "{doc:?}");
}

#[test]
fn valid_profiles_still_answer_200() {
    let state = state();
    for body in [
        r#"{"profile":"powerlaw:0.8"}"#,
        r#"{"profile":{"kind":"gustafson","alpha":0.05}}"#,
        r#"{"profile":"perfect"}"#,
        r#"{"alpha":0.2}"#,
    ] {
        let (_, response) = route(&state, &post("/v1/optimize", body));
        assert_eq!(response.status, 200, "body: {body}");
    }
}
