//! Integration suite for the distributed sweep coordinator: an in-process
//! three-node cluster (one coordinator, two workers) computes a sharded
//! sweep whose merged CSV must be byte-identical to the single-process
//! engine — including when a worker is killed mid-shard and its work is
//! re-issued from the coordinator's checkpoint.
//!
//! "Killing" a worker here is `ServeHandle::shutdown()`: the worker's
//! in-flight shard is cancelled and its heartbeats stop, which is exactly
//! what the coordinator observes after a real `kill -9` — a lease that
//! silently stops renewing. (CI additionally runs the subprocess version
//! with a literal `kill -9`.)

use std::time::{Duration, Instant};

use ayd_serve::client::{await_workers, engine_sweep_csv};
use ayd_serve::{ClusterConfig, HttpClient, Json, PrometheusText, Server, ServerConfig};

/// 256 cells: 2 scenarios × 4 λ multipliers × 8 processor counts × 4 pattern
/// lengths. Big enough that a shard spans several upload chunks (so there is
/// a real mid-shard window to kill a worker in), small enough for a debug
/// test run.
const GRID_BODY: &str = r#"{"platforms":["Hera"],"scenarios":[1,3],"lambda_multipliers":[1,2,5,10],"processors":[128,192,256,384,512,768,1024,2048],"pattern_lengths":[900,1800,3600,7200]}"#;

const LEASE: Duration = Duration::from_millis(300);

fn boot(
    config: ServerConfig,
) -> (
    ayd_serve::ServeHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
    std::sync::Arc<ayd_serve::AppState>,
) {
    let server = Server::bind(config).unwrap();
    let handle = server.handle().unwrap();
    let state = server.state();
    let thread = std::thread::spawn(move || server.serve());
    (handle, thread, state)
}

fn coordinator_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        cluster: ClusterConfig {
            coordinator: true,
            lease: LEASE,
            ..ClusterConfig::default()
        },
        ..ServerConfig::default()
    }
}

fn worker_config(coordinator: &str) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        cluster: ClusterConfig {
            worker_of: Some(coordinator.to_string()),
            ..ClusterConfig::default()
        },
        ..ServerConfig::default()
    }
}

fn get_json(addr: &str, path: &str) -> Json {
    let mut client = HttpClient::connect(addr).unwrap();
    let response = client.get(path, None).unwrap();
    assert_eq!(response.status, 200, "{path}: {}", response.body);
    Json::parse(&response.body).unwrap()
}

fn poll_csv(addr: &str, id: u64, timeout: Duration) -> String {
    let mut client = HttpClient::connect(addr).unwrap();
    let deadline = Instant::now() + timeout;
    loop {
        let poll = client
            .get(&format!("/v1/sweep/{id}"), Some("text/csv"))
            .unwrap();
        assert_eq!(poll.status, 200, "{}", poll.body);
        if poll.content_type.starts_with("text/csv") {
            return poll.body;
        }
        assert!(Instant::now() < deadline, "sweep {id} did not finish");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn counter(addr: &str, name: &str) -> f64 {
    let mut client = HttpClient::connect(addr).unwrap();
    let response = client.get("/metrics", None).unwrap();
    let scrape = PrometheusText::parse(&response.body).unwrap();
    scrape.value(name).unwrap_or(0.0)
}

#[test]
fn a_cluster_survives_a_worker_killed_mid_shard_without_recomputing_rows() {
    let (coord_handle, coord_thread, _) = boot(coordinator_config());
    let coord_addr = coord_handle.addr().to_string();

    // Phase 1: one worker only, so the first shard is guaranteed to be
    // dispatched to the node we are about to kill.
    let (victim_handle, victim_thread, victim_state) = boot(worker_config(&coord_addr));
    await_workers(&coord_addr, 1, Duration::from_secs(30)).unwrap();

    // Submit the sweep as a 2-shard distributed job.
    let mut client = HttpClient::connect(&coord_addr).unwrap();
    let body = format!("{}{}", &GRID_BODY[..GRID_BODY.len() - 1], r#","shards":2}"#);
    let accepted = client.post_json("/v1/sweep", &body).unwrap();
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let doc = Json::parse(&accepted.body).unwrap();
    let id = doc.get("id").unwrap().as_f64().unwrap() as u64;
    assert!(matches!(doc.get("resume_token"), Some(Json::Null)));

    // Wait until the victim has checkpointed at least one chunk of a shard
    // it has not finished, then kill it instantly: freezing the worker
    // runtime (compute cancelled at the next cell, heartbeats stopped, no
    // final upload) is what `kill -9` looks like from the coordinator — a
    // lease that silently stops renewing with the shard half-checkpointed.
    let deadline = Instant::now() + Duration::from_secs(60);
    let (shard_index, checkpointed) = loop {
        assert!(
            Instant::now() < deadline,
            "no mid-shard checkpoint appeared within 60 s"
        );
        let view = get_json(&coord_addr, &format!("/v1/sweep/{id}/shards"));
        let progress = view.get("progress").unwrap().as_array().unwrap();
        let mid = progress.iter().find_map(|shard| {
            let index = shard.get("index")?.as_f64()? as usize;
            let completed = shard.get("completed")?.as_f64()? as usize;
            let total = shard.get("total")?.as_f64()? as usize;
            (shard.get("status")?.as_str()? == "dispatched" && completed > 0 && completed < total)
                .then_some((index, completed))
        });
        if let Some(found) = mid {
            break found;
        }
        std::thread::sleep(Duration::from_millis(1));
    };
    assert!(checkpointed > 0);
    victim_state.worker.as_ref().unwrap().stop();
    victim_handle.shutdown();
    victim_thread.join().unwrap().unwrap();

    // With no other worker around, recovery is observable in isolation: the
    // victim's lease expires (> 2 leases after its last upload) and the
    // half-done shard is re-issued from the coordinator's checkpoint — the
    // completed prefix is retained, never recomputed.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(
            Instant::now() < deadline,
            "the victim's shard was not re-issued within 30 s"
        );
        let view = get_json(&coord_addr, &format!("/v1/sweep/{id}/shards"));
        let progress = view.get("progress").unwrap().as_array().unwrap();
        let shard = &progress[shard_index];
        if shard.get("reissues").unwrap().as_f64().unwrap() >= 1.0 {
            let kept = shard.get("completed").unwrap().as_f64().unwrap() as usize;
            assert!(
                kept >= checkpointed,
                "re-issue dropped checkpointed rows: kept {kept}, had {checkpointed}"
            );
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        counter(&coord_addr, "ayd_lease_expiries_total") >= 1.0,
        "no lease expiry recorded"
    );
    assert!(
        counter(&coord_addr, "ayd_shard_reissues_total") >= 1.0,
        "no shard re-issue recorded"
    );

    // Bring up the replacement worker: the job must still finish, and the
    // merged CSV must be byte-identical to the single-process engine.
    let (worker2_handle, worker2_thread, _) = boot(worker_config(&coord_addr));
    let csv = poll_csv(&coord_addr, id, Duration::from_secs(120));
    let expected = engine_sweep_csv(GRID_BODY).unwrap();
    assert_eq!(csv.len(), expected.len(), "merged CSV size differs");
    assert_eq!(csv, expected, "merged CSV differs from the engine");

    // The dead worker is visible in the operator view until purged.
    let workers = get_json(&coord_addr, "/v1/workers");
    assert!(workers.get("dead").unwrap().as_f64().unwrap() >= 1.0);

    worker2_handle.shutdown();
    worker2_thread.join().unwrap().unwrap();
    coord_handle.shutdown();
    coord_thread.join().unwrap().unwrap();
}

#[test]
fn two_workers_split_a_distributed_sweep_and_report_live_progress() {
    let (coord_handle, coord_thread, _) = boot(coordinator_config());
    let coord_addr = coord_handle.addr().to_string();
    let (w1_handle, w1_thread, _) = boot(worker_config(&coord_addr));
    let (w2_handle, w2_thread, _) = boot(worker_config(&coord_addr));
    await_workers(&coord_addr, 2, Duration::from_secs(30)).unwrap();

    let body = format!("{}{}", &GRID_BODY[..GRID_BODY.len() - 1], r#","shards":4}"#);
    let mut client = HttpClient::connect(&coord_addr).unwrap();
    let accepted = client.post_json("/v1/sweep", &body).unwrap();
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let id = Json::parse(&accepted.body)
        .unwrap()
        .get("id")
        .unwrap()
        .as_f64()
        .unwrap() as u64;

    // While the job runs, the live shards view names the workers: every
    // dispatched shard carries a worker id and address. Capture one snapshot
    // with at least one dispatched shard (the job may finish fast in a
    // release build, so don't insist on catching it — the final state check
    // below is the load-bearing one).
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut saw_dispatched_with_worker = false;
    let csv = loop {
        assert!(
            Instant::now() < deadline,
            "sweep did not finish within 60 s"
        );
        let view = get_json(&coord_addr, &format!("/v1/sweep/{id}/shards"));
        if let Some(progress) = view.get("progress").and_then(Json::as_array) {
            for shard in progress {
                if shard.get("status").unwrap().as_str() == Some("dispatched") {
                    assert!(shard.get("worker").unwrap().as_f64().is_some());
                    assert!(shard.get("worker_addr").unwrap().as_str().is_some());
                    saw_dispatched_with_worker = true;
                }
            }
        }
        let poll = client
            .get(&format!("/v1/sweep/{id}"), Some("text/csv"))
            .unwrap();
        if poll.content_type.starts_with("text/csv") {
            break poll.body;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    let _ = saw_dispatched_with_worker;

    let expected = engine_sweep_csv(GRID_BODY).unwrap();
    assert_eq!(csv, expected, "merged CSV differs from the engine");

    // Both workers earned at least one dispatch between them.
    assert!(counter(&coord_addr, "ayd_shards_dispatched_total") >= 4.0);

    for (handle, thread) in [(w1_handle, w1_thread), (w2_handle, w2_thread)] {
        handle.shutdown();
        thread.join().unwrap().unwrap();
    }
    coord_handle.shutdown();
    coord_thread.join().unwrap().unwrap();
}
