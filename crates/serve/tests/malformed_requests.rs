//! Property suite: the server survives arbitrary and adversarial input.
//!
//! Every case drives [`ayd_serve::serve_connection`] with in-memory byte
//! streams and asserts the two safety properties of the tentpole contract:
//! the connection handler never panics, and whenever it answers at all, the
//! answer is a sequence of well-formed `HTTP/1.1 <code> <reason>` responses
//! with accurate `content-length` framing.

use std::io::Cursor;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use ayd_serve::{serve_connection, AppState, ServerConfig};
use proptest::prelude::*;

fn test_state() -> Arc<AppState> {
    AppState::new(&ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    })
}

/// Feeds bytes to a fresh connection handler, returning everything it wrote.
fn drive(state: &Arc<AppState>, input: &[u8]) -> Vec<u8> {
    let shutdown = AtomicBool::new(false);
    let mut reader = Cursor::new(input.to_vec());
    let mut output = Vec::new();
    serve_connection(&mut reader, &mut output, state, &shutdown);
    output
}

/// Splits raw connection output into individual responses using the
/// `content-length` framing, panicking on any violation.
fn assert_well_formed(output: &[u8]) -> Vec<u16> {
    let mut statuses = Vec::new();
    let mut rest = output;
    while !rest.is_empty() {
        let text = std::str::from_utf8(rest).expect("response head is UTF-8");
        assert!(
            text.starts_with("HTTP/1.1 "),
            "response does not start with a status line: {:?}",
            &text[..text.len().min(60)]
        );
        let line_end = text.find("\r\n").expect("status line is CRLF-terminated");
        let status_line = &text[..line_end];
        let code: u16 = status_line
            .split(' ')
            .nth(1)
            .expect("status line has a code")
            .parse()
            .expect("status code is numeric");
        assert!((100..=599).contains(&code), "implausible status {code}");
        statuses.push(code);
        let head_end = text.find("\r\n\r\n").expect("head/body separator present") + 4;
        let head = &text[..head_end];
        let length: usize = head
            .lines()
            .find_map(|line| line.strip_prefix("content-length: "))
            .expect("content-length header present")
            .trim()
            .parse()
            .expect("content-length is numeric");
        assert!(
            head_end + length <= rest.len(),
            "body shorter than declared"
        );
        rest = &rest[head_end + length..];
    }
    statuses
}

/// The shared corpus of deliberately malformed requests.
fn adversarial_corpus() -> Vec<Vec<u8>> {
    let huge_target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(100_000));
    let many_headers = {
        let mut s = String::from("GET /healthz HTTP/1.1\r\n");
        for i in 0..500 {
            s.push_str(&format!("x-h{i}: v\r\n"));
        }
        s.push_str("\r\n");
        s
    };
    vec![
        b"GET\r\n\r\n".to_vec(),
        b"\r\n\r\n".to_vec(),
        b"POST /v1/optimize HTTP/1.1\r\ncontent-length: -5\r\n\r\n".to_vec(),
        b"POST /v1/optimize HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n".to_vec(),
        b"POST /v1/optimize HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc".to_vec(),
        b"POST /v1/optimize HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n0\r\n\r\n".to_vec(),
        b"GET /healthz HTTP/9.9\r\n\r\n".to_vec(),
        b"G\x00T / HTTP/1.1\r\n\r\n".to_vec(),
        b"PATCH /v1/optimize HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /../etc/passwd HTTP/1.1\r\n\r\n".to_vec(),
        b"OPTIONS * HTTP/1.1\r\nweird\r\n\r\n".to_vec(),
        huge_target.into_bytes(),
        many_headers.into_bytes(),
        // Pipelined garbage after a valid request.
        b"GET /healthz HTTP/1.1\r\n\r\n\xff\xfe\xfd garbage".to_vec(),
        // An oversized body relative to the configured max.
        {
            let mut s = format!(
                "POST /v1/batch HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                2 << 20
            )
            .into_bytes();
            s.extend(std::iter::repeat_n(b'x', 2 << 20));
            s
        },
    ]
}

/// The corpus, exercised exhaustively through the one-shot handler.
#[test]
fn adversarial_corpus_always_answers_a_well_formed_status_line() {
    let state = test_state();
    for case in adversarial_corpus() {
        let output = drive(&state, &case);
        assert!(!output.is_empty(), "malformed input must be answered");
        let statuses = assert_well_formed(&output);
        // The final response of a malformed session is always an error (any
        // valid pipelined prefix may have been answered 200 first).
        assert!(
            statuses.last().unwrap() >= &400,
            "expected an error status, got {statuses:?}"
        );
    }
}

/// Feeds the same bytes through the event path's incremental parser
/// ([`ayd_serve::serve_chunks`]) in the given pieces, returning everything
/// it wrote.
fn drive_chunks(state: &Arc<AppState>, chunks: &[&[u8]]) -> Vec<u8> {
    let shutdown = AtomicBool::new(false);
    ayd_serve::serve_chunks(chunks, state, &shutdown)
}

/// The event path must answer exactly what the one-shot path answers, no
/// matter how the bytes are framed on the wire. Trace IDs differ per request,
/// so equivalence is on the status-line sequence (which pins response count,
/// codes and framing — `assert_well_formed` already checked the rest).
#[test]
fn byte_at_a_time_reads_match_the_one_shot_path() {
    let state = test_state();
    let mut valid_post = b"POST /v1/optimize HTTP/1.1\r\n".to_vec();
    let body = br#"{"platform":"Hera","scenario":1}"#;
    valid_post.extend_from_slice(format!("content-length: {}\r\n\r\n", body.len()).as_bytes());
    valid_post.extend_from_slice(body);
    let mut cases = adversarial_corpus();
    cases.push(b"GET /healthz HTTP/1.1\r\n\r\n".to_vec());
    cases.push(valid_post);
    for case in cases {
        let one_shot = assert_well_formed(&drive(&state, &case));
        // True byte-at-a-time for ordinary cases; the two >100 KB corpus
        // members get 1 KB drips so the test stays fast in debug builds.
        let step = if case.len() <= 2_048 { 1 } else { 1_024 };
        let pieces: Vec<&[u8]> = case.chunks(step).collect();
        let incremental = assert_well_formed(&drive_chunks(&state, &pieces));
        assert_eq!(
            one_shot,
            incremental,
            "statuses diverge for {:?}... dripped {step} byte(s) at a time",
            &case[..case.len().min(48)]
        );
    }
}

/// Pipelined requests (two valid, one 404) split at **every** byte boundary
/// answer the same status sequence as the whole pipeline in one read.
#[test]
fn split_pipelined_requests_match_the_one_shot_path() {
    let state = test_state();
    let body = br#"{"platform":"Hera","scenario":1}"#;
    let mut pipeline = b"GET /healthz HTTP/1.1\r\n\r\n".to_vec();
    pipeline.extend_from_slice(
        format!(
            "POST /v1/optimize HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    );
    pipeline.extend_from_slice(body);
    pipeline.extend_from_slice(b"GET /v1/no-such-route HTTP/1.1\r\n\r\n");
    let one_shot = assert_well_formed(&drive(&state, &pipeline));
    assert_eq!(one_shot, vec![200, 200, 404]);
    for cut in 0..=pipeline.len() {
        let pieces = [&pipeline[..cut], &pipeline[cut..]];
        let split = assert_well_formed(&drive_chunks(&state, &pieces));
        assert_eq!(one_shot, split, "statuses diverge when split at byte {cut}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Pure fuzz: arbitrary bytes never panic the handler, and any output is
    /// well-formed response framing.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..600)) {
        let state = test_state();
        let output = drive(&state, &bytes);
        assert_well_formed(&output);
    }

    /// Structured fuzz: a method-ish token, a path, header garbage and a body
    /// stitched together with every separator variant.
    #[test]
    fn structured_garbage_always_gets_a_status_line(
        method in prop::collection::vec(64u8..=95, 0..8),
        path_noise in prop::collection::vec(32u8..=126, 0..40),
        header_noise in prop::collection::vec(0u8..=255, 0..120),
        declared_length in 0u64..50_000,
        body in prop::collection::vec(0u8..=255, 0..64),
    ) {
        let state = test_state();
        let mut request = method.clone();
        request.push(b' ');
        request.push(b'/');
        request.extend(&path_noise);
        request.extend_from_slice(b" HTTP/1.1\r\n");
        request.extend(&header_noise);
        request.extend_from_slice(format!("\r\ncontent-length: {declared_length}\r\n\r\n").as_bytes());
        request.extend(&body);
        let output = drive(&state, &request);
        assert_well_formed(&output);
    }

    /// Arbitrary bytes, arbitrarily split in two: the incremental path's
    /// status sequence always equals the one-shot path's.
    #[test]
    fn arbitrary_split_points_never_change_the_statuses(
        bytes in prop::collection::vec(0u8..=255, 0..300),
        cut in 0usize..=300,
    ) {
        let state = test_state();
        let one_shot = assert_well_formed(&drive(&state, &bytes));
        let cut = cut.min(bytes.len());
        let pieces = [&bytes[..cut], &bytes[cut..]];
        let split = assert_well_formed(&drive_chunks(&state, &pieces));
        prop_assert_eq!(one_shot, split);
    }
}
