//! Integration suite for the event-driven serving core: graceful drain under
//! load, idle-connection tracking, and blocking/event equivalence.
//!
//! Servers here bind `127.0.0.1:0` with the default [`ServerConfig`], which
//! selects the epoll reactor wherever it is supported
//! ([`ayd_serve::EVENT_IO_SUPPORTED`]) and the blocking pool elsewhere — so
//! the suite is meaningful (if less sharp) on every platform.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ayd_serve::{HttpClient, IoModel, PrometheusText, Server, ServerConfig};

const OPTIMIZE_BODY: &str = r#"{"platform":"Hera","scenario":1,"lambda_multiplier":10}"#;

fn boot(
    config: ServerConfig,
) -> (
    ayd_serve::ServeHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind(config).unwrap();
    let handle = server.handle().unwrap();
    let thread = std::thread::spawn(move || server.serve());
    (handle, thread)
}

fn default_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ..ServerConfig::default()
    }
}

fn scrape(addr: &str) -> PrometheusText {
    let mut client = HttpClient::connect(addr).unwrap();
    let response = client.get("/metrics", None).unwrap();
    assert_eq!(response.status, 200);
    PrometheusText::parse(&response.body).unwrap()
}

/// How a worker's connection ended. A server may close a keep-alive
/// connection between responses (that is the protocol working), but it must
/// never cut a response off partway — a status line with no body behind it.
enum ConnEnd {
    Clean,
    Truncated(String),
}

fn classify(error: &std::io::Error) -> ConnEnd {
    use std::io::ErrorKind;
    match error.kind() {
        // The far side hung up between requests, or our write raced the
        // close: nothing of a response was delivered, nothing was truncated.
        ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted | ErrorKind::BrokenPipe => {
            ConnEnd::Clean
        }
        ErrorKind::InvalidData if error.to_string().contains("before a status line") => {
            ConnEnd::Clean
        }
        // Anything else — EOF inside headers or mid-body above all — means a
        // response started arriving and was cut off.
        _ => ConnEnd::Truncated(error.to_string()),
    }
}

/// Regression test for the drain path: shutting the server down while
/// clients hammer it must never truncate a response that has started going
/// out. Workers run until the server disappears; every connection must end
/// either after a complete response or before one began.
#[test]
fn shutdown_under_load_leaves_no_truncated_responses() {
    let (handle, thread) = boot(default_config());
    let addr = Arc::new(handle.addr().to_string());

    let mut workers = Vec::new();
    for _ in 0..8 {
        let addr = Arc::clone(&addr);
        workers.push(std::thread::spawn(move || {
            let mut successes = 0usize;
            let mut truncations: Vec<String> = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(10);
            let mut client = match HttpClient::connect(&addr) {
                Ok(client) => client,
                Err(_) => return (successes, truncations),
            };
            while Instant::now() < deadline {
                match client.post_json("/v1/optimize", OPTIMIZE_BODY) {
                    Ok(response) => {
                        assert_eq!(response.status, 200);
                        successes += 1;
                    }
                    Err(error) => {
                        if let ConnEnd::Truncated(detail) = classify(&error) {
                            truncations.push(detail);
                            break;
                        }
                        // Clean close: reconnect until the listener is gone.
                        match HttpClient::connect(&addr) {
                            Ok(fresh) => client = fresh,
                            Err(_) => break,
                        }
                    }
                }
            }
            (successes, truncations)
        }));
    }

    // Let the load establish, then pull the rug.
    std::thread::sleep(Duration::from_millis(150));
    handle.shutdown();
    thread.join().unwrap().unwrap();

    let mut total = 0usize;
    for worker in workers {
        let (successes, truncations) = worker.join().unwrap();
        total += successes;
        assert!(
            truncations.is_empty(),
            "responses truncated during shutdown: {truncations:?}"
        );
    }
    assert!(total > 0, "no requests completed before shutdown");
}

/// Idle keep-alive connections (sending nothing) are carried and counted by
/// the server while it keeps answering real requests around them.
#[test]
fn idle_connections_are_tracked_and_served_around() {
    let (handle, thread) = boot(default_config());
    let addr = handle.addr().to_string();

    let idle: Vec<TcpStream> = (0..64)
        .map(|_| TcpStream::connect(&addr).unwrap())
        .collect();

    // Accepts land asynchronously; poll the gauge until it sees all of them.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut open = 0.0;
    while Instant::now() < deadline {
        open = scrape(&addr).value("ayd_open_connections").unwrap();
        if open >= idle.len() as f64 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        open >= idle.len() as f64,
        "gauge says {open} open connections, {} idle ones are held",
        idle.len()
    );

    // Real work flows normally around the idle herd.
    let mut client = HttpClient::connect(&addr).unwrap();
    let response = client.post_json("/v1/optimize", OPTIMIZE_BODY).unwrap();
    assert_eq!(response.status, 200);

    // Every open connection was accepted by exactly one acceptor, and the
    // per-acceptor counters account for all of them.
    let metrics = scrape(&addr);
    let accepts: f64 = metrics
        .samples
        .iter()
        .filter(|s| s.name == "ayd_accepts_total")
        .map(|s| s.value)
        .sum();
    let connections = metrics.value("ayd_connections_total").unwrap();
    assert_eq!(accepts, connections);
    assert!(accepts >= 1.0 + idle.len() as f64, "accepts {accepts}");

    drop(idle);
    handle.shutdown();
    thread.join().unwrap().unwrap();
}

/// The `--io-model blocking` escape hatch still serves end-to-end and labels
/// its accepts.
#[test]
fn blocking_io_model_still_serves_end_to_end() {
    let server = Server::bind(ServerConfig {
        io_model: IoModel::Blocking,
        ..default_config()
    })
    .unwrap();
    assert_eq!(server.io_model(), IoModel::Blocking);
    let handle = server.handle().unwrap();
    let addr = handle.addr().to_string();
    let thread = std::thread::spawn(move || server.serve());

    let mut client = HttpClient::connect(&addr).unwrap();
    assert_eq!(client.get("/healthz", None).unwrap().status, 200);
    assert_eq!(
        client
            .post_json("/v1/optimize", OPTIMIZE_BODY)
            .unwrap()
            .status,
        200
    );
    let blocking_accepts = scrape(&addr).sum_labeled("ayd_accepts_total", "reactor", "blocking");
    assert!(blocking_accepts >= 1.0, "accepts {blocking_accepts}");

    // Close the keep-alive connection first: a blocking handler otherwise
    // sits out its read timeout before noticing the shutdown flag.
    drop(client);
    handle.shutdown();
    thread.join().unwrap().unwrap();
}

/// The two io models answer the same query with byte-identical bodies and
/// media types (trace IDs are per-request and excluded by construction).
#[test]
fn event_and_blocking_answers_are_bit_identical() {
    if ayd_serve::EVENT_IO_SUPPORTED {
        let event = Server::bind(ServerConfig {
            io_model: IoModel::Event,
            ..default_config()
        })
        .unwrap();
        assert_eq!(event.io_model(), IoModel::Event);
    }
    let mut answers: Vec<(u16, String, String)> = Vec::new();
    for io_model in [IoModel::default_model(), IoModel::Blocking] {
        let (handle, thread) = boot(ServerConfig {
            io_model,
            ..default_config()
        });
        let addr = handle.addr().to_string();
        let mut client = HttpClient::connect(&addr).unwrap();
        let response = client.post_json("/v1/optimize", OPTIMIZE_BODY).unwrap();
        answers.push((response.status, response.content_type, response.body));
        drop(client);
        handle.shutdown();
        thread.join().unwrap().unwrap();
    }
    assert_eq!(answers[0], answers[1]);
}
