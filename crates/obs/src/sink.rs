//! Pluggable span sinks: JSON-lines writer and in-memory recorder.

use std::io::Write;
use std::sync::Mutex;

use crate::SpanRecord;

/// A destination for batches of completed spans. Implementations must be
/// cheap enough to run on the recording thread (the per-thread buffer hands
/// over up to a few dozen records at a time).
pub trait Sink: Send + Sync {
    /// Records one batch of completed spans.
    fn record(&self, spans: &[SpanRecord]);
}

/// Writes one JSON object per span (see [`SpanRecord::to_json_line`]) to any
/// [`Write`], newline-terminated — the `--trace-log PATH` format.
pub struct JsonLinesSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps a writer. Use a `BufWriter` for file targets.
    pub fn new(writer: W) -> Self {
        Self {
            writer: Mutex::new(writer),
        }
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) -> std::io::Result<()> {
        self.writer.lock().expect("trace writer poisoned").flush()
    }
}

impl JsonLinesSink<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) a trace-log file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(Self::new(std::io::BufWriter::new(std::fs::File::create(
            path,
        )?)))
    }
}

impl<W: Write + Send> Sink for JsonLinesSink<W> {
    fn record(&self, spans: &[SpanRecord]) {
        let mut writer = self.writer.lock().expect("trace writer poisoned");
        for span in spans {
            // A full disk must not take the traced computation down with it;
            // tracing is best-effort by design.
            let _ = writeln!(writer, "{}", span.to_json_line());
        }
        let _ = writer.flush();
    }
}

impl<W: Write + Send> Drop for JsonLinesSink<W> {
    fn drop(&mut self) {
        if let Ok(writer) = self.writer.get_mut() {
            let _ = writer.flush();
        }
    }
}

/// Accumulates spans in memory, for assertions in tests.
#[derive(Default)]
pub struct MemorySink {
    spans: Mutex<Vec<SpanRecord>>,
}

impl MemorySink {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes every span recorded so far (clears the recorder).
    pub fn take(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut self.spans.lock().expect("memory sink poisoned"))
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("memory sink poisoned").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, spans: &[SpanRecord]) {
        self.spans
            .lock()
            .expect("memory sink poisoned")
            .extend_from_slice(spans);
    }
}

/// Renders `s` as a JSON string literal (quotes, backslashes and control
/// characters escaped).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FieldValue;

    fn record(name: &'static str) -> SpanRecord {
        SpanRecord {
            trace: 1,
            id: 2,
            parent: 0,
            name,
            start_ns: 5,
            duration_ns: 10,
            fields: vec![("k", FieldValue::U64(1))],
        }
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_span() {
        let sink = JsonLinesSink::new(Vec::new());
        sink.record(&[record("a"), record("b")]);
        let bytes = sink.writer.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(text.contains("\"name\":\"a\""));
        assert!(text.contains("\"name\":\"b\""));
    }

    #[test]
    fn memory_sink_accumulates_and_clears() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.record(&[record("x")]);
        sink.record(&[record("y")]);
        assert_eq!(sink.len(), 2);
        let taken = sink.take();
        assert_eq!(taken.len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn json_strings_escape_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
