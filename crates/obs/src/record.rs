//! Span data types shared by the real runtime and the `trace`-featureless
//! no-op build (so trace logs parse the same either way).

/// A typed span field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counts, byte sizes, cell indices).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rates, seconds).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Short free-form text (endpoint names, strategy specs, reasons).
    Str(String),
}

impl FieldValue {
    /// Renders the value as a JSON token.
    pub fn to_json(&self) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::I64(v) => v.to_string(),
            FieldValue::F64(v) => {
                if v.is_finite() {
                    format!("{v}")
                } else {
                    "null".to_string()
                }
            }
            FieldValue::Bool(v) => v.to_string(),
            FieldValue::Str(v) => crate::sink::json_string(v),
        }
    }
}

/// One completed span, as stored in the ring and handed to sinks.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Trace this span belongs to (0 = untraced).
    pub trace: u64,
    /// Unique span ID (process-wide, never 0).
    pub id: u64,
    /// Parent span ID (0 = root).
    pub parent: u64,
    /// Static span name (stage or unit of work).
    pub name: &'static str,
    /// Start time in nanoseconds since the runtime epoch (process start).
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds (0 for events).
    pub duration_ns: u64,
    /// Typed fields, in insertion order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl SpanRecord {
    /// Renders the record as one JSON object with a **stable field order**
    /// (`trace`, `span`, `parent`, `name`, `start_ns`, `dur_ns`, `fields` in
    /// insertion order) so trace logs are golden-testable.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"trace\":\"");
        out.push_str(&format!("{:016x}", self.trace));
        out.push_str("\",\"span\":");
        out.push_str(&self.id.to_string());
        out.push_str(",\"parent\":");
        out.push_str(&self.parent.to_string());
        out.push_str(",\"name\":");
        out.push_str(&crate::sink::json_string(self.name));
        out.push_str(",\"start_ns\":");
        out.push_str(&self.start_ns.to_string());
        out.push_str(",\"dur_ns\":");
        out.push_str(&self.duration_ns.to_string());
        out.push_str(",\"fields\":{");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&crate::sink::json_string(key));
            out.push(':');
            out.push_str(&value.to_json());
        }
        out.push_str("}}");
        out
    }

    /// The value of a field, if present.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Cross-thread span handle: enough to parent a child span on another thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanContext {
    /// Trace ID (0 = untraced / disabled).
    pub trace: u64,
    /// Span ID of the parent (0 = none).
    pub span: u64,
}
