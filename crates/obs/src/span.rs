//! The tracing runtime: span guards, per-thread buffers, the global ring.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::record::{FieldValue, SpanContext, SpanRecord};
use crate::sink::Sink;

/// Completed spans kept in the process-wide ring (newest win on overflow).
pub const RING_CAPACITY: usize = 2048;

/// Completed spans a thread buffers before draining into the ring even when
/// no root span completes (worker threads producing only child spans).
const THREAD_BUFFER: usize = 64;

struct Runtime {
    enabled: AtomicBool,
    next_id: AtomicU64,
    ring: Mutex<std::collections::VecDeque<SpanRecord>>,
    sink: Mutex<Option<Arc<dyn Sink>>>,
    epoch: Instant,
}

fn runtime() -> &'static Runtime {
    static RUNTIME: OnceLock<Runtime> = OnceLock::new();
    RUNTIME.get_or_init(|| Runtime {
        enabled: AtomicBool::new(false),
        next_id: AtomicU64::new(1),
        ring: Mutex::new(std::collections::VecDeque::with_capacity(RING_CAPACITY)),
        sink: Mutex::new(None),
        epoch: Instant::now(),
    })
}

thread_local! {
    /// Innermost-open-span stack of this thread: (trace, span id) pairs.
    static STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
    /// Completed spans awaiting a flush into the global ring.
    static BUFFER: RefCell<Vec<SpanRecord>> = const { RefCell::new(Vec::new()) };
}

/// True when tracing is recording (one relaxed atomic load — this is the
/// entire cost of a span site while tracing is off).
#[inline]
pub fn enabled() -> bool {
    runtime().enabled.load(Ordering::Relaxed)
}

/// Turns recording on without installing a sink (completed spans land in the
/// in-process ring only — what `/v1/trace/recent` serves).
pub fn enable() {
    runtime().enabled.store(true, Ordering::Relaxed);
}

/// Stops recording. Already-buffered spans stay in the ring.
pub fn disable() {
    runtime().enabled.store(false, Ordering::Relaxed);
}

/// Installs (or, with `None`, removes) the process-wide sink. Installing a
/// sink also enables recording; removing it leaves recording on — call
/// [`disable`] to stop entirely.
pub fn set_sink(sink: Option<Arc<dyn Sink>>) {
    let enable_now = sink.is_some();
    *runtime().sink.lock().expect("obs sink poisoned") = sink;
    if enable_now {
        enable();
    }
}

/// Last `limit` completed records from the ring, oldest first.
pub fn recent(limit: usize) -> Vec<SpanRecord> {
    let ring = runtime().ring.lock().expect("obs ring poisoned");
    let skip = ring.len().saturating_sub(limit);
    ring.iter().skip(skip).cloned().collect()
}

/// Drains this thread's buffered spans into the ring and sink. Call at the
/// end of a worker loop that only ever produces child spans (their buffers
/// otherwise wait for the high-water mark).
pub fn flush() {
    BUFFER.with(|buffer| flush_buffer(&mut buffer.borrow_mut()));
}

fn flush_buffer(buffer: &mut Vec<SpanRecord>) {
    if buffer.is_empty() {
        return;
    }
    let batch: Vec<SpanRecord> = std::mem::take(buffer);
    let rt = runtime();
    if let Some(sink) = rt.sink.lock().expect("obs sink poisoned").clone() {
        sink.record(&batch);
    }
    let mut ring = rt.ring.lock().expect("obs ring poisoned");
    for record in batch {
        if ring.len() == RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(record);
    }
}

fn now_ns() -> u64 {
    runtime().epoch.elapsed().as_nanos() as u64
}

fn next_id() -> u64 {
    runtime().next_id.fetch_add(1, Ordering::Relaxed)
}

struct Inner {
    trace: u64,
    id: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
    started: Instant,
    fields: Vec<(&'static str, FieldValue)>,
}

/// An open span. Finishes (and records itself) on [`Span::finish`] or on
/// drop, whichever comes first. All methods are no-ops on a disabled span.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct Span {
    inner: Option<Inner>,
}

impl Span {
    /// A guard that records nothing (what every span call returns while
    /// tracing is disabled).
    pub fn disabled() -> Self {
        Span { inner: None }
    }

    /// True when this span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Cross-thread handle to this span ([`SpanContext::default`] when
    /// disabled, which [`child_of`] treats as "record nothing").
    pub fn context(&self) -> SpanContext {
        match &self.inner {
            Some(inner) => SpanContext {
                trace: inner.trace,
                span: inner.id,
            },
            None => SpanContext::default(),
        }
    }

    /// Attaches an unsigned-integer field.
    pub fn field_u64(&mut self, key: &'static str, value: u64) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, FieldValue::U64(value)));
        }
    }

    /// Attaches a float field.
    pub fn field_f64(&mut self, key: &'static str, value: f64) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, FieldValue::F64(value)));
        }
    }

    /// Attaches a boolean field.
    pub fn field_bool(&mut self, key: &'static str, value: bool) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, FieldValue::Bool(value)));
        }
    }

    /// Attaches a string field.
    pub fn field_str(&mut self, key: &'static str, value: &str) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, FieldValue::Str(value.to_string())));
        }
    }

    /// Closes the span now (equivalent to dropping it, but explicit at call
    /// sites where the scope end is far from the measured region).
    pub fn finish(self) {
        // Drop does the work.
    }

    /// Discards the span without recording it: unwinds the thread stack but
    /// writes nothing to the buffer, ring or sink. For speculative spans
    /// opened before knowing whether work will arrive (e.g. a request span
    /// opened before the keep-alive read that finds the peer gone).
    pub fn cancel(mut self) {
        if let Some(inner) = self.inner.take() {
            STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                if let Some(pos) = stack.iter().rposition(|&(_, id)| id == inner.id) {
                    stack.remove(pos);
                }
            });
        }
    }

    fn close(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let duration_ns = inner.started.elapsed().as_nanos() as u64;
        // Unwind this span from the thread's open stack. Out-of-order closes
        // (a parent finishing before its child — the child is then an
        // "orphan") remove only their own entry, wherever it sits.
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&(_, id)| id == inner.id) {
                stack.remove(pos);
            }
        });
        let record = SpanRecord {
            trace: inner.trace,
            id: inner.id,
            parent: inner.parent,
            name: inner.name,
            start_ns: inner.start_ns,
            duration_ns,
            fields: inner.fields,
        };
        let is_root = record.parent == 0;
        BUFFER.with(|buffer| {
            let mut buffer = buffer.borrow_mut();
            buffer.push(record);
            if is_root || buffer.len() >= THREAD_BUFFER {
                flush_buffer(&mut buffer);
            }
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

fn open(name: &'static str, trace: u64, parent: u64) -> Span {
    let id = next_id();
    STACK.with(|stack| stack.borrow_mut().push((trace, id)));
    Span {
        inner: Some(Inner {
            trace,
            id,
            parent,
            name,
            start_ns: now_ns(),
            started: Instant::now(),
            fields: Vec::new(),
        }),
    }
}

/// Starts a span as a child of the innermost open span on this thread (a
/// fresh root with its own trace ID when there is none).
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span::disabled();
    }
    let (trace, parent) = STACK.with(|stack| stack.borrow().last().copied().unwrap_or((0, 0)));
    let trace = if trace == 0 { next_trace_id() } else { trace };
    open(name, trace, parent)
}

/// Starts a root span under an explicit trace ID (e.g. an HTTP request ID).
pub fn root_span(name: &'static str, trace: u64) -> Span {
    if !enabled() {
        return Span::disabled();
    }
    open(name, trace, 0)
}

/// Starts a span parented across threads via a captured [`SpanContext`].
/// A default (zeroed) context — what a disabled parent hands out — records
/// nothing.
pub fn child_of(ctx: SpanContext, name: &'static str) -> Span {
    if !enabled() || ctx == SpanContext::default() {
        return Span::disabled();
    }
    open(name, ctx.trace, ctx.span)
}

/// Records an instantaneous event: a zero-duration child of the innermost
/// open span on this thread.
pub fn event(name: &'static str) {
    if !enabled() {
        return;
    }
    let (trace, parent) = STACK.with(|stack| stack.borrow().last().copied().unwrap_or((0, 0)));
    let record = SpanRecord {
        trace,
        id: next_id(),
        parent,
        name,
        start_ns: now_ns(),
        duration_ns: 0,
        fields: Vec::new(),
    };
    BUFFER.with(|buffer| {
        let mut buffer = buffer.borrow_mut();
        buffer.push(record);
        if buffer.len() >= THREAD_BUFFER {
            flush_buffer(&mut buffer);
        }
    });
}

/// A fresh process-unique trace ID, whether or not tracing is recording.
/// Callers that stamp IDs onto responses (e.g. `x-ayd-trace-id`) use this so
/// the ID exists even when no span will ever carry it.
pub fn fresh_trace_id() -> u64 {
    next_trace_id()
}

/// SplitMix64-whitened trace IDs for auto-rooted spans: unique and
/// non-sequential, so log greps for one trace never prefix-match another.
fn next_trace_id() -> u64 {
    let mut z = next_id().wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31) | 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemorySink;

    /// The runtime is process-global; tests that enable/disable it or read
    /// the ring must not interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        match GATE.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn fresh_sink() -> Arc<MemorySink> {
        let sink = Arc::new(MemorySink::new());
        set_sink(Some(sink.clone() as Arc<dyn Sink>));
        sink
    }

    fn teardown() {
        flush();
        set_sink(None);
        disable();
    }

    #[test]
    fn spans_nest_time_and_carry_fields() {
        let _gate = lock();
        let sink = fresh_sink();
        {
            let mut root = root_span("request", 0xabcd);
            root.field_str("endpoint", "optimize");
            {
                let mut child = span("evaluate");
                child.field_u64("cells", 8);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            root.field_bool("ok", true);
        }
        let spans = sink.take();
        teardown();
        assert_eq!(spans.len(), 2);
        let child = &spans[0];
        let root = &spans[1];
        assert_eq!(child.name, "evaluate");
        assert_eq!(root.name, "request");
        assert_eq!(root.trace, 0xabcd);
        assert_eq!(child.trace, 0xabcd);
        assert_eq!(child.parent, root.id);
        assert_eq!(root.parent, 0);
        assert!(child.duration_ns > 0);
        assert!(root.duration_ns >= child.duration_ns);
        assert!(child.start_ns >= root.start_ns);
        assert_eq!(child.field("cells"), Some(&FieldValue::U64(8)));
        assert_eq!(
            root.field("endpoint"),
            Some(&FieldValue::Str("optimize".to_string()))
        );
        assert_eq!(root.field("ok"), Some(&FieldValue::Bool(true)));
    }

    #[test]
    fn disabled_spans_record_nothing_and_cost_no_ids() {
        let _gate = lock();
        disable();
        let mut s = span("ghost");
        assert!(!s.is_recording());
        assert_eq!(s.context(), SpanContext::default());
        s.field_u64("k", 1);
        drop(s);
        event("ghost-event");
        flush();
        // Nothing new in the ring beyond what earlier tests left there: a
        // disabled child_of from a disabled parent is also inert.
        let before = recent(RING_CAPACITY).len();
        let child = child_of(SpanContext::default(), "ghost-child");
        drop(child);
        flush();
        assert_eq!(recent(RING_CAPACITY).len(), before);
    }

    #[test]
    fn orphan_spans_survive_out_of_order_closes() {
        let _gate = lock();
        let sink = fresh_sink();
        let parent = root_span("parent", 7);
        let parent_id = parent.context().span;
        let child = span("child");
        let child_id = child.context().span;
        // Parent closes first; the child is now an orphan but must still
        // record with the correct parent ID, and the stack must not
        // mis-parent the next span.
        drop(parent);
        let sibling = span("post-parent");
        let sibling_record_parent = child_id; // expected: child is innermost
        drop(sibling);
        drop(child);
        flush();
        let spans = sink.take();
        teardown();
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("parent").id, parent_id);
        assert_eq!(by_name("child").parent, parent_id);
        assert_eq!(by_name("post-parent").parent, sibling_record_parent);
    }

    #[test]
    fn cancelled_spans_record_nothing_and_unwind_the_stack() {
        let _gate = lock();
        let sink = fresh_sink();
        let root = root_span("kept", 0x33);
        let speculative = span("speculative");
        speculative.cancel();
        // The cancelled span must not mis-parent the next sibling.
        let sibling = span("sibling");
        drop(sibling);
        drop(root);
        let spans = sink.take();
        teardown();
        assert!(spans.iter().all(|s| s.name != "speculative"));
        let root = spans.iter().find(|s| s.name == "kept").unwrap();
        let sibling = spans.iter().find(|s| s.name == "sibling").unwrap();
        assert_eq!(sibling.parent, root.id);
    }

    #[test]
    fn drop_without_close_records_once() {
        let _gate = lock();
        let sink = fresh_sink();
        let s = root_span("dropped", 9);
        drop(s);
        let spans = sink.take();
        teardown();
        assert_eq!(spans.iter().filter(|s| s.name == "dropped").count(), 1);
    }

    #[test]
    fn ring_overflow_keeps_the_newest_records() {
        let _gate = lock();
        enable();
        set_sink(None);
        // Clear any residue, then overfill by 10: the ring must hold exactly
        // the newest RING_CAPACITY, in order.
        for i in 0..(RING_CAPACITY + 10) {
            let mut s = root_span("fill", 1);
            s.field_u64("seq", i as u64);
        }
        flush();
        let ring: Vec<_> = recent(RING_CAPACITY + 100)
            .into_iter()
            .filter(|r| r.name == "fill")
            .collect();
        teardown();
        assert!(ring.len() <= RING_CAPACITY);
        let last = ring.last().unwrap();
        assert_eq!(
            last.field("seq"),
            Some(&FieldValue::U64((RING_CAPACITY + 9) as u64))
        );
        // Monotone sequence numbers: newest kept, oldest discarded.
        let first_seq = match ring.first().unwrap().field("seq") {
            Some(FieldValue::U64(v)) => *v,
            other => panic!("bad seq field: {other:?}"),
        };
        assert!(first_seq >= 10 || ring.len() < RING_CAPACITY);
    }

    #[test]
    fn cross_thread_children_parent_correctly() {
        let _gate = lock();
        let sink = fresh_sink();
        let root = root_span("sweep", 0x51);
        let ctx = root.context();
        let handle = std::thread::spawn(move || {
            let mut chunk = child_of(ctx, "chunk");
            chunk.field_u64("start_cell", 64);
            drop(chunk);
            flush();
        });
        handle.join().unwrap();
        drop(root);
        let spans = sink.take();
        teardown();
        let chunk = spans.iter().find(|s| s.name == "chunk").unwrap();
        let sweep = spans.iter().find(|s| s.name == "sweep").unwrap();
        assert_eq!(chunk.parent, sweep.id);
        assert_eq!(chunk.trace, 0x51);
    }

    #[test]
    fn json_lines_have_stable_field_order() {
        let record = SpanRecord {
            trace: 0x1f,
            id: 3,
            parent: 2,
            name: "parse",
            start_ns: 100,
            duration_ns: 250,
            fields: vec![
                ("bytes", FieldValue::U64(512)),
                ("ok", FieldValue::Bool(true)),
                ("note", FieldValue::Str("a\"b".to_string())),
                ("rate", FieldValue::F64(0.5)),
            ],
        };
        assert_eq!(
            record.to_json_line(),
            "{\"trace\":\"000000000000001f\",\"span\":3,\"parent\":2,\"name\":\"parse\",\
             \"start_ns\":100,\"dur_ns\":250,\
             \"fields\":{\"bytes\":512,\"ok\":true,\"note\":\"a\\\"b\",\"rate\":0.5}}"
        );
        // Non-finite floats degrade to null rather than emitting bad JSON.
        assert_eq!(FieldValue::F64(f64::NAN).to_json(), "null");
    }

    #[test]
    fn events_are_zero_duration_children() {
        let _gate = lock();
        let sink = fresh_sink();
        let root = root_span("request", 0x77);
        event("cache-hit");
        drop(root);
        let spans = sink.take();
        teardown();
        let ev = spans.iter().find(|s| s.name == "cache-hit").unwrap();
        let root = spans.iter().find(|s| s.name == "request").unwrap();
        assert_eq!(ev.duration_ns, 0);
        assert_eq!(ev.parent, root.id);
    }
}
