//! # ayd-obs — structured tracing and instrumentation
//!
//! The paper's contribution is an *accounting* of where wall-clock time goes
//! on a failure-prone platform; this crate lets the reproduction answer the
//! same question about itself. It provides lock-cheap, monotonic-clock timed
//! [`Span`]s with typed key/value fields and parent/child nesting, buffered
//! per thread and drained into a bounded process-wide ring, plus pluggable
//! [`Sink`]s:
//!
//! - [`JsonLinesSink`] — one JSON object per completed span, stable field
//!   order (golden-testable), used by `reproduce --trace-log PATH`;
//! - [`MemorySink`] — an in-memory recorder for assertions in tests.
//!
//! ## Cost model
//!
//! Tracing is **off by default**. Every span site starts with one relaxed
//! atomic load ([`enabled`]); while disabled a [`span`] call constructs
//! nothing and its guard's `Drop` is a no-op. Building the crate without the
//! default `trace` feature removes even the atomic load — the [`span!`] and
//! [`event!`] macros expand to a disabled guard and the whole runtime is
//! compiled out.
//!
//! Recording never touches the traced computation's values: spans carry only
//! clock readings and counters, so enabling tracing cannot perturb any
//! deterministic output (sweep CSV bytes are asserted identical with tracing
//! on and off).
//!
//! ## Nesting and threads
//!
//! [`span`] makes the new span a child of the innermost span still open *on
//! the current thread*; [`root_span`] starts a fresh trace (for example one
//! HTTP request, carrying its request ID as the trace ID); [`child_of`]
//! parents a span across threads via a [`SpanContext`] captured from the
//! parent. Spans may finish in any order — closing a parent before its child
//! simply leaves the child an orphan in the stack, which is tolerated (the
//! records still carry the correct parent IDs). Dropping a guard without
//! calling [`Span::finish`] records the span exactly as a finish would.
//!
//! Completed spans are buffered per thread and flushed to the global ring
//! (and the installed sink) when a root span completes, when the buffer
//! fills, or on an explicit [`flush`]. The ring keeps the newest
//! [`RING_CAPACITY`] records; overflow discards the oldest.
//!
//! ## Span vocabulary
//!
//! The emitting crates share one flat vocabulary (the full table, with
//! fields, is `docs/OBSERVABILITY.md` at the repository root): the serving
//! path emits `connection`/`request`/`parse`/`route`/`evaluate`/`render`,
//! the sweep engine `sweep`/`chunk`/`shard`, and a distributed-sweep
//! coordinator additionally `dispatch`, `lease_expire`, `shard_reissue` and
//! `shard_chunk` — the audit trail of which worker held which shard epoch
//! and how many checkpointed rows each recovery retained.

#![deny(missing_docs)]
#![warn(clippy::all)]

mod record;
mod sink;
#[cfg(feature = "trace")]
mod span;

pub use record::{FieldValue, SpanContext, SpanRecord};
pub use sink::{JsonLinesSink, MemorySink, Sink};

#[cfg(feature = "trace")]
pub use span::{
    child_of, disable, enable, enabled, event, flush, fresh_trace_id, recent, root_span, set_sink,
    span, Span, RING_CAPACITY,
};

#[cfg(not(feature = "trace"))]
mod noop;
#[cfg(not(feature = "trace"))]
pub use noop::{
    child_of, disable, enable, enabled, event, flush, fresh_trace_id, recent, root_span, set_sink,
    span, Span, RING_CAPACITY,
};

/// Starts a span (child of the innermost open span on this thread). Expands
/// to a disabled guard when the crate is built without the `trace` feature.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Records an instantaneous event (a zero-duration span). Expands to nothing
/// observable when the crate is built without the `trace` feature.
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::event($name)
    };
}
