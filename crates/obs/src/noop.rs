//! The `trace`-featureless build: the span API as inert no-ops, so
//! downstream crates compile identically with tracing compiled out.

use std::sync::Arc;

use crate::record::SpanContext;
use crate::sink::Sink;
use crate::SpanRecord;

/// Ring capacity (no ring exists in no-op builds).
pub const RING_CAPACITY: usize = 0;

/// Always `false`.
#[inline]
pub fn enabled() -> bool {
    false
}

/// No-op.
pub fn enable() {}

/// No-op.
pub fn disable() {}

/// No-op (the sink is dropped immediately).
pub fn set_sink(_sink: Option<Arc<dyn Sink>>) {}

/// Always empty.
pub fn recent(_limit: usize) -> Vec<SpanRecord> {
    Vec::new()
}

/// No-op.
pub fn flush() {}

/// An inert span guard.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct Span;

impl Span {
    /// The only kind of span in a no-op build.
    pub fn disabled() -> Self {
        Span
    }

    /// Always `false`.
    pub fn is_recording(&self) -> bool {
        false
    }

    /// Always the zeroed context.
    pub fn context(&self) -> SpanContext {
        SpanContext::default()
    }

    /// No-op.
    pub fn field_u64(&mut self, _key: &'static str, _value: u64) {}
    /// No-op.
    pub fn field_f64(&mut self, _key: &'static str, _value: f64) {}
    /// No-op.
    pub fn field_bool(&mut self, _key: &'static str, _value: bool) {}
    /// No-op.
    pub fn field_str(&mut self, _key: &'static str, _value: &str) {}
    /// No-op.
    pub fn finish(self) {}
    /// No-op.
    pub fn cancel(self) {}
}

/// Always disabled.
pub fn span(_name: &'static str) -> Span {
    Span
}

/// Always disabled.
pub fn root_span(_name: &'static str, _trace: u64) -> Span {
    Span
}

/// Always disabled.
pub fn child_of(_ctx: SpanContext, _name: &'static str) -> Span {
    Span
}

/// No-op.
pub fn event(_name: &'static str) {}

/// A fresh process-unique ID. Still real in no-op builds: response headers
/// stamp request IDs whether or not spans record.
pub fn fresh_trace_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let mut z = NEXT
        .fetch_add(1, Ordering::Relaxed)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31) | 1
}
