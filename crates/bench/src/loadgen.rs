//! Load generator for the `ayd-serve` query service.
//!
//! Drives `POST /v1/optimize` (or any configured endpoint) over `concurrency`
//! keep-alive connections until `requests` responses are in, then reports
//! throughput and client-observed latency percentiles. Used three ways: the
//! `loadgen` binary (CLI + CI smoke step), the `serve_throughput` Criterion
//! bench, and — via `--check` — the end-to-end golden round-trip of
//! [`ayd_serve::smoke_check`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ayd_serve::HttpClient;

/// What to send, how often, and how wide.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Server address (`host:port`).
    pub addr: String,
    /// Total number of requests.
    pub requests: usize,
    /// Concurrent keep-alive connections.
    pub concurrency: usize,
    /// Request path.
    pub path: String,
    /// JSON body sent with every request.
    pub body: String,
    /// Cache-busting mode: ignore `body` and send each request with a
    /// **unique** `lambda_multiplier` (derived from the global request
    /// index), so every evaluation misses the server's cache and the run
    /// measures the cold optimiser path instead of cache-hit throughput.
    pub cache_bust: bool,
    /// Idle keep-alive connections to hold open (sending nothing) for the
    /// whole run, on top of the `concurrency` working connections. Opened
    /// best-effort before the workers start; the count actually held is in
    /// [`LoadReport::idle_conns`]. Stresses the server's connection capacity
    /// without adding request load.
    pub idle_conns: usize,
    /// Drip-feed mode: when set, every request's bytes are written at roughly
    /// this many bytes per second instead of in one burst, exercising the
    /// server's partial-read path under load.
    pub slow_client_bytes_per_sec: Option<u64>,
}

impl LoadOptions {
    /// Default load: `requests` optimize queries (a realistic Hera/scenario-1
    /// query that exercises the shared cache) over `concurrency` connections.
    pub fn optimize(addr: &str, requests: usize, concurrency: usize) -> Self {
        Self {
            addr: addr.to_string(),
            requests,
            concurrency: concurrency.max(1),
            path: "/v1/optimize".to_string(),
            body: r#"{"platform":"Hera","scenario":1,"lambda_multiplier":10}"#.to_string(),
            cache_bust: false,
            idle_conns: 0,
            slow_client_bytes_per_sec: None,
        }
    }

    /// The cache-hostile variant of [`LoadOptions::optimize`]: every request
    /// carries a distinct error rate, so no two requests share a cache entry.
    pub fn optimize_cache_busting(addr: &str, requests: usize, concurrency: usize) -> Self {
        Self {
            cache_bust: true,
            ..Self::optimize(addr, requests, concurrency)
        }
    }

    /// The body of request number `index`. In cache-busting mode the
    /// multiplier steps by `10⁻³` per request — about nine orders of
    /// magnitude above the cache key's quantization granularity, so every
    /// body lands in its own cache entry.
    pub fn body_for(&self, index: usize) -> String {
        if self.cache_bust {
            format!(
                r#"{{"platform":"Hera","scenario":1,"lambda_multiplier":{}}}"#,
                1.0 + index as f64 * 1e-3
            )
        } else {
            self.body.clone()
        }
    }
}

/// Outcome of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests completed (successfully or not).
    pub requests: usize,
    /// Successful (HTTP 200) responses — the sample count behind the latency
    /// percentiles and the throughput figure.
    pub successes: usize,
    /// Responses that were errors (non-200 status or I/O failure).
    pub errors: usize,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Completed requests per second.
    pub req_per_s: f64,
    /// Median client-observed latency, in microseconds.
    pub p50_us: f64,
    /// 90th-percentile client-observed latency, in microseconds.
    pub p90_us: f64,
    /// 99th-percentile client-observed latency, in microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile client-observed latency, in microseconds.
    pub p999_us: f64,
    /// Worst client-observed latency, in microseconds.
    pub max_us: f64,
    /// Error breakdown by HTTP status (non-200 responses only); transport
    /// failures are under [`LoadReport::io_errors`] instead.
    pub error_statuses: BTreeMap<u16, usize>,
    /// Errors with no HTTP status: connect/read/write failures.
    pub io_errors: usize,
    /// Idle keep-alive connections actually held open for the run (may be
    /// below the requested [`LoadOptions::idle_conns`] when the client-side
    /// descriptor limit bites first).
    pub idle_conns: usize,
    /// The server's own `ayd_open_connections` gauge, scraped while the idle
    /// connections were still held (`None` when the scrape failed).
    pub open_connections: Option<f64>,
}

impl LoadReport {
    /// The error breakdown as `status 404 x3, io x1` (empty when error-free).
    pub fn render_errors(&self) -> String {
        let mut parts: Vec<String> = self
            .error_statuses
            .iter()
            .map(|(status, count)| format!("status {status} x{count}"))
            .collect();
        if self.io_errors > 0 {
            parts.push(format!("io x{}", self.io_errors));
        }
        parts.join(", ")
    }

    /// One-line human-readable summary. A run in which every request failed
    /// has no latency samples, so the percentile/throughput figures would be
    /// meaningless zeros — say so instead of printing them. Any errors get a
    /// by-status breakdown in parentheses.
    pub fn render(&self) -> String {
        let breakdown = if self.errors > 0 {
            format!(" ({})", self.render_errors())
        } else {
            String::new()
        };
        let mut conns = String::new();
        if self.idle_conns > 0 {
            conns.push_str(&format!(", {} idle conns held", self.idle_conns));
        }
        if let Some(open) = self.open_connections {
            conns.push_str(&format!(", server open_connections {open:.0}"));
        }
        if self.successes == 0 {
            return format!(
                "loadgen: {} requests, 0 successful requests, {} errors{breakdown}, \
                 {:.2?} elapsed{conns}",
                self.requests, self.errors, self.elapsed
            );
        }
        format!(
            "loadgen: {} requests, {} errors{breakdown}, {:.2?} elapsed, {:.0} req/s, \
             p50 {:.0} µs, p90 {:.0} µs, p99 {:.0} µs, p99.9 {:.0} µs, max {:.0} µs{conns}",
            self.requests,
            self.errors,
            self.elapsed,
            self.req_per_s,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.p999_us,
            self.max_us
        )
    }
}

fn percentile(sorted_us: &[u64], fraction: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_us.len() as f64 - 1.0) * fraction).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)] as f64
}

/// Runs the load and gathers the report. Fails only when no connection can be
/// established at all; per-request failures are counted as errors instead.
pub fn run_load(options: &LoadOptions) -> Result<LoadReport, String> {
    // Fail fast (and warm the server's accept path) before spawning workers.
    HttpClient::connect(&options.addr)
        .map_err(|e| format!("cannot connect to {}: {e}", options.addr))?;

    // Idle keep-alive connections: opened before the workers, held (sending
    // nothing) until after the run's final metrics scrape, so the server
    // carries them through the whole measurement. Best-effort — stop at the
    // first failure (typically the local descriptor limit) and report how
    // many actually opened.
    let mut idle: Vec<std::net::TcpStream> = Vec::with_capacity(options.idle_conns);
    for _ in 0..options.idle_conns {
        match std::net::TcpStream::connect(&options.addr) {
            Ok(stream) => idle.push(stream),
            Err(_) => break,
        }
    }

    let issued = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let mut all_latencies: Vec<u64> = Vec::with_capacity(options.requests);
    let mut error_statuses: BTreeMap<u16, usize> = BTreeMap::new();
    let mut io_errors = 0usize;
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for _ in 0..options.concurrency {
            let issued = Arc::clone(&issued);
            workers.push(scope.spawn(move || {
                let mut outcome = WorkerOutcome::default();
                let mut client = match HttpClient::connect(&options.addr) {
                    Ok(client) => client,
                    Err(_) => {
                        // Count every request this worker would have issued.
                        loop {
                            if issued.fetch_add(1, Ordering::Relaxed) >= options.requests {
                                break;
                            }
                            outcome.io_errors += 1;
                        }
                        return outcome;
                    }
                };
                loop {
                    let index = issued.fetch_add(1, Ordering::Relaxed);
                    if index >= options.requests {
                        break;
                    }
                    let body = options.body_for(index);
                    let begun = Instant::now();
                    let outcome_for = match options.slow_client_bytes_per_sec {
                        Some(rate) => client.post_json_paced(&options.path, &body, rate),
                        None => client.post_json(&options.path, &body),
                    };
                    match outcome_for {
                        Ok(response) if response.status == 200 => {
                            outcome.latencies.push(begun.elapsed().as_micros() as u64);
                        }
                        Ok(response) => {
                            *outcome.statuses.entry(response.status).or_default() += 1;
                        }
                        Err(_) => {
                            outcome.io_errors += 1;
                            // The connection may be dead; try a fresh one.
                            match HttpClient::connect(&options.addr) {
                                Ok(fresh) => client = fresh,
                                Err(_) => break,
                            }
                        }
                    }
                }
                outcome
            }));
        }
        for worker in workers {
            // A panicked worker contributes no samples; the run's other
            // workers still produce a usable report.
            let outcome = worker.join().unwrap_or_default();
            all_latencies.extend(outcome.latencies);
            for (status, count) in outcome.statuses {
                *error_statuses.entry(status).or_default() += count;
            }
            io_errors += outcome.io_errors;
        }
    });
    let elapsed = started.elapsed();
    // Scrape the server's view of its connection load while the idle
    // connections are still held, so the gauge reflects the run's peak.
    let open_connections = scrape_metrics(&options.addr)
        .ok()
        .and_then(|scrape| scrape.value("ayd_open_connections"));
    let idle_held = idle.len();
    drop(idle);
    all_latencies.sort_unstable();
    let errors = io_errors + error_statuses.values().sum::<usize>();
    let completed = all_latencies.len() + errors;
    Ok(LoadReport {
        requests: completed,
        successes: all_latencies.len(),
        errors,
        elapsed,
        req_per_s: all_latencies.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: percentile(&all_latencies, 0.50),
        p90_us: percentile(&all_latencies, 0.90),
        p99_us: percentile(&all_latencies, 0.99),
        p999_us: percentile(&all_latencies, 0.999),
        max_us: all_latencies.last().copied().unwrap_or(0) as f64,
        error_statuses,
        io_errors,
        idle_conns: idle_held,
        open_connections,
    })
}

/// What one load worker brings home.
#[derive(Debug, Default)]
struct WorkerOutcome {
    latencies: Vec<u64>,
    statuses: BTreeMap<u16, usize>,
    io_errors: usize,
}

/// Scrapes and parses `/metrics` into the typed model.
pub fn scrape_metrics(addr: &str) -> Result<ayd_serve::PrometheusText, String> {
    let mut client =
        HttpClient::connect(addr).map_err(|e| format!("metrics connect to {addr}: {e}"))?;
    let response = client
        .get("/metrics", None)
        .map_err(|e| format!("metrics fetch: {e}"))?;
    ayd_serve::PrometheusText::parse(&response.body).map_err(|e| format!("metrics parse: {e}"))
}

/// The server-side request count of `endpoint` (all statuses) in a scrape.
pub fn endpoint_requests(scrape: &ayd_serve::PrometheusText, endpoint: &str) -> f64 {
    scrape.sum_labeled("ayd_requests_total", "endpoint", endpoint)
}

/// Asserts the server counted exactly `expected` more requests on `endpoint`
/// than `baseline`. The server observes a request *after* writing its
/// response, so the client can scrape before the last observation lands —
/// retry briefly before declaring a lost or double-counted request.
pub fn await_request_delta(
    addr: &str,
    endpoint: &str,
    baseline: f64,
    expected: usize,
) -> Result<(), String> {
    let mut delta = 0.0;
    for _ in 0..40 {
        delta = endpoint_requests(&scrape_metrics(addr)?, endpoint) - baseline;
        if delta == expected as f64 {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    Err(format!(
        "metrics delta: endpoint {endpoint} counted {delta} new requests, client sent {expected}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ayd_serve::{Server, ServerConfig};

    #[test]
    fn percentiles_pick_ranked_samples() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 51.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        // Degenerate sample sets must not panic or index out of range.
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[], 0.0), 0.0);
        assert_eq!(percentile(&[], 1.0), 0.0);
        assert_eq!(percentile(&[42], 0.0), 42.0);
        assert_eq!(percentile(&[42], 0.5), 42.0);
        assert_eq!(percentile(&[42], 1.0), 42.0);
    }

    #[test]
    fn an_all_error_run_reports_zero_successes_cleanly() {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let handle = server.handle().unwrap();
        let addr = handle.addr().to_string();
        let thread = std::thread::spawn(move || server.serve());

        // Every request 404s: zero successes, and the summary says so instead
        // of printing zero-sample percentiles and a zero throughput figure.
        let options = LoadOptions {
            path: "/nope".to_string(),
            ..LoadOptions::optimize(&addr, 16, 4)
        };
        let report = run_load(&options).unwrap();
        assert_eq!(report.requests, 16);
        assert_eq!(report.successes, 0);
        assert_eq!(report.errors, 16);
        assert_eq!(report.req_per_s, 0.0);
        assert_eq!((report.p50_us, report.p99_us), (0.0, 0.0));
        // Every error carries its status: 16 x 404, no transport failures.
        assert_eq!(report.error_statuses.get(&404), Some(&16));
        assert_eq!(report.io_errors, 0);
        assert_eq!(report.render_errors(), "status 404 x16");
        let rendered = report.render();
        assert!(rendered.contains("0 successful requests"), "{rendered}");
        assert!(rendered.contains("status 404 x16"), "{rendered}");
        assert!(!rendered.contains("req/s"), "{rendered}");

        handle.shutdown();
        thread.join().unwrap().unwrap();
    }

    #[test]
    fn load_run_against_a_local_server_has_no_errors() {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let handle = server.handle().unwrap();
        let addr = handle.addr().to_string();
        let thread = std::thread::spawn(move || server.serve());

        // The server must count exactly the requests the client sends.
        let baseline = endpoint_requests(&scrape_metrics(&addr).unwrap(), "optimize");
        let report = run_load(&LoadOptions::optimize(&addr, 64, 4)).unwrap();
        assert_eq!(report.requests, 64);
        assert_eq!(report.errors, 0);
        assert!(report.req_per_s > 0.0);
        // Percentiles are monotone and bounded by the worst sample.
        assert!(report.p50_us <= report.p90_us);
        assert!(report.p90_us <= report.p99_us);
        assert!(report.p99_us <= report.p999_us);
        assert!(report.p999_us <= report.max_us);
        assert!(report.render().contains("0 errors"));
        assert!(report.render().contains("max"), "{}", report.render());
        assert_eq!(report.render_errors(), "");
        await_request_delta(&addr, "optimize", baseline, 64).unwrap();

        handle.shutdown();
        thread.join().unwrap().unwrap();
    }

    #[test]
    fn idle_and_slow_client_modes_hold_connections_and_still_succeed() {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let handle = server.handle().unwrap();
        let addr = handle.addr().to_string();
        let thread = std::thread::spawn(move || server.serve());

        // 16 idle keep-alive connections held through the run, while every
        // working request is dripped at ~5 KB/s (one or two bytes-level
        // chunks per request) — the server must answer them all and its own
        // open-connection gauge must account for the idle ones.
        let options = LoadOptions {
            idle_conns: 16,
            slow_client_bytes_per_sec: Some(5_000),
            ..LoadOptions::optimize(&addr, 8, 2)
        };
        let report = run_load(&options).unwrap();
        assert_eq!(report.errors, 0, "{}", report.render());
        assert_eq!(report.requests, 8);
        assert_eq!(report.idle_conns, 16);
        let open = report
            .open_connections
            .expect("metrics scrape reports the gauge");
        assert!(open >= 16.0, "gauge {open} below the 16 idle conns held");
        let rendered = report.render();
        assert!(rendered.contains("16 idle conns held"), "{rendered}");
        assert!(rendered.contains("server open_connections"), "{rendered}");

        handle.shutdown();
        thread.join().unwrap().unwrap();
    }

    #[test]
    fn cache_busting_bodies_are_unique_and_every_request_runs_cold() {
        let options = LoadOptions::optimize_cache_busting("x:1", 4, 1);
        assert_ne!(options.body_for(0), options.body_for(1));
        assert_ne!(options.body_for(1), options.body_for(2));
        let plain = LoadOptions::optimize("x:1", 4, 1);
        assert_eq!(plain.body_for(0), plain.body);
        assert_eq!(plain.body_for(3), plain.body);

        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let handle = server.handle().unwrap();
        let addr = handle.addr().to_string();
        let thread = std::thread::spawn(move || server.serve());

        let report = run_load(&LoadOptions::optimize_cache_busting(&addr, 32, 4)).unwrap();
        assert_eq!(report.errors, 0, "{}", report.render());

        // Every unique body must have missed the cache: the server's cold
        // histogram counts at least one evaluation per request.
        let mut client = ayd_serve::HttpClient::connect(&addr).unwrap();
        let metrics = client.get("/metrics", None).unwrap().body;
        let cold_count: f64 = metrics
            .lines()
            .find_map(|line| line.strip_prefix("ayd_optimize_cold_seconds_count "))
            .expect("cold histogram rendered")
            .parse()
            .unwrap();
        assert!(cold_count >= 32.0, "only {cold_count} cold evaluations");

        handle.shutdown();
        thread.join().unwrap().unwrap();
    }
}
