//! `loadgen` — load generator and smoke checker for `reproduce serve`.
//!
//! ```text
//! loadgen --addr HOST:PORT [--requests N] [--concurrency C] [--cache-bust]
//!         [--idle-conns N] [--slow-client BYTES_PER_SEC] [--check]
//!         [--cluster-check [--workers N]]
//!         [--cluster-sweep SHARDS --out FILE [--grid-body FILE] [--timeout-secs N]]
//!         [--engine-sweep --out FILE [--grid-body FILE]]
//! ```
//!
//! Default mode drives `POST /v1/optimize` over `C` keep-alive connections,
//! prints a one-line throughput/latency report (p50/p90/p99/p99.9/max, with
//! an error-by-status breakdown when anything failed), checks the server-side
//! `ayd_requests_total{endpoint="optimize"}` delta against the number of
//! requests actually sent, validates the `/metrics`
//! payload and exits non-zero when any request failed. `--cache-bust` gives
//! every request a unique error rate so each evaluation misses the server's
//! cache (measuring the cold optimiser path). `--idle-conns N` additionally
//! holds N keep-alive connections that send nothing for the whole run
//! (connection-capacity stress; the report then includes the count held and
//! the server's own `ayd_open_connections` gauge). `--slow-client
//! BYTES_PER_SEC` drips every request's bytes at that rate instead of one
//! burst, exercising the server's partial-read path. `--check` instead runs
//! the end-to-end golden round-trip of `ayd_serve::smoke_check`: health, one
//! optimize query compared bit-for-bit against the offline evaluator, one
//! sweep job compared byte-for-byte against the in-process engine, the
//! cold-path latency bound, and a metrics parse.
//!
//! Cluster modes (for a `reproduce serve --coordinator` instance):
//! `--cluster-check` waits for `--workers N` live workers (default 1), runs
//! the golden grid as a distributed job and byte-compares the merged CSV
//! against the in-process engine. `--cluster-sweep SHARDS` submits the CI
//! grid (or `--grid-body FILE`) with that shard count and writes the merged
//! CSV to `--out`; `--engine-sweep` computes the same grid in-process and
//! writes the reference CSV to `--out`, so `cmp` decides byte-identity.

use std::process::ExitCode;

use ayd_bench::loadgen::{
    await_request_delta, endpoint_requests, run_load, scrape_metrics, LoadOptions,
};

/// The CI cluster grid: 4 platforms × 3 scenarios × 4 speedup profiles ×
/// 4 λ multipliers × 4 processor counts × 3 pattern lengths = 2304 cells,
/// covering all four profile families (the mixed-profile determinism the
/// single-process golden tests pin).
const CI_CLUSTER_GRID: &str = r#"{"platforms":["Hera","Atlas","Coastal","Coastal SSD"],"scenarios":[1,2,3],"profiles":["amdahl:0.1","powerlaw:0.8","gustafson:0.05","perfect"],"lambda_multipliers":[1,2,5,10],"processors":[256,512,1024,2048],"pattern_lengths":[1800,3600,7200]}"#;

struct Args {
    addr: String,
    requests: usize,
    concurrency: usize,
    cache_bust: bool,
    idle_conns: usize,
    slow_client: Option<u64>,
    check: bool,
    cluster_check: bool,
    workers: usize,
    cluster_sweep: Option<usize>,
    engine_sweep: bool,
    grid_body: Option<String>,
    out: Option<std::path::PathBuf>,
    timeout_secs: u64,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut addr = None;
    let mut requests = 200;
    let mut concurrency = 8;
    let mut cache_bust = false;
    let mut idle_conns = 0;
    let mut slow_client = None;
    let mut check = false;
    let mut cluster_check = false;
    let mut workers = 1;
    let mut cluster_sweep = None;
    let mut engine_sweep = false;
    let mut grid_body = None;
    let mut out = None;
    let mut timeout_secs = 300;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => addr = Some(iter.next().ok_or("--addr requires a value")?.clone()),
            "--requests" => {
                requests = iter
                    .next()
                    .ok_or("--requests requires a value")?
                    .parse()
                    .map_err(|_| "invalid --requests value".to_string())?;
            }
            "--concurrency" => {
                concurrency = iter
                    .next()
                    .ok_or("--concurrency requires a value")?
                    .parse()
                    .map_err(|_| "invalid --concurrency value".to_string())?;
            }
            "--cache-bust" => cache_bust = true,
            "--idle-conns" => {
                idle_conns = iter
                    .next()
                    .ok_or("--idle-conns requires a value")?
                    .parse()
                    .map_err(|_| "invalid --idle-conns value".to_string())?;
            }
            "--slow-client" => {
                let rate: u64 = iter
                    .next()
                    .ok_or("--slow-client requires a BYTES_PER_SEC value")?
                    .parse()
                    .map_err(|_| "invalid --slow-client value".to_string())?;
                if rate == 0 {
                    return Err("--slow-client rate must be positive".to_string());
                }
                slow_client = Some(rate);
            }
            "--check" => check = true,
            "--cluster-check" => cluster_check = true,
            "--workers" => {
                workers = iter
                    .next()
                    .ok_or("--workers requires a value")?
                    .parse()
                    .map_err(|_| "invalid --workers value".to_string())?;
                if workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
            }
            "--cluster-sweep" => {
                let shards: usize = iter
                    .next()
                    .ok_or("--cluster-sweep requires a SHARDS value")?
                    .parse()
                    .map_err(|_| "invalid --cluster-sweep value".to_string())?;
                if shards == 0 {
                    return Err("--cluster-sweep needs at least 1 shard".to_string());
                }
                cluster_sweep = Some(shards);
            }
            "--engine-sweep" => engine_sweep = true,
            "--grid-body" => {
                let path = iter.next().ok_or("--grid-body requires a path")?;
                grid_body = Some(
                    std::fs::read_to_string(path)
                        .map_err(|e| format!("--grid-body {path}: {e}"))?,
                );
            }
            "--out" => {
                let path = iter.next().ok_or("--out requires a path")?;
                out = Some(std::path::PathBuf::from(path));
            }
            "--timeout-secs" => {
                timeout_secs = iter
                    .next()
                    .ok_or("--timeout-secs requires a value")?
                    .parse()
                    .map_err(|_| "invalid --timeout-secs value".to_string())?;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if (cluster_sweep.is_some() || engine_sweep) && out.is_none() {
        return Err("--cluster-sweep/--engine-sweep require --out FILE".to_string());
    }
    if engine_sweep && cluster_sweep.is_some() {
        return Err("--engine-sweep and --cluster-sweep are mutually exclusive".to_string());
    }
    // The engine reference never touches a server; every other mode does.
    let addr = if engine_sweep {
        addr.unwrap_or_default()
    } else {
        addr.ok_or(
            "usage: loadgen --addr HOST:PORT [--requests N] [--concurrency C] \
             [--cache-bust] [--idle-conns N] [--slow-client BYTES_PER_SEC] [--check] \
             [--cluster-check [--workers N]] \
             [--cluster-sweep SHARDS --out FILE [--grid-body FILE] [--timeout-secs N]] \
             [--engine-sweep --out FILE [--grid-body FILE]]",
        )?
    };
    Ok(Args {
        addr,
        requests,
        concurrency,
        cache_bust,
        idle_conns,
        slow_client,
        check,
        cluster_check,
        workers,
        cluster_sweep,
        engine_sweep,
        grid_body,
        out,
        timeout_secs,
    })
}

fn run(args: &Args) -> Result<(), String> {
    if args.engine_sweep {
        let body = args.grid_body.as_deref().unwrap_or(CI_CLUSTER_GRID);
        let csv = ayd_serve::client::engine_sweep_csv(body)?;
        let out = args.out.as_ref().expect("parse_args enforces --out");
        std::fs::write(out, &csv).map_err(|e| format!("write {}: {e}", out.display()))?;
        println!(
            "loadgen --engine-sweep: {} rows -> {}",
            csv.lines().count() - 1,
            out.display()
        );
        return Ok(());
    }
    if let Some(shards) = args.cluster_sweep {
        let body = args.grid_body.as_deref().unwrap_or(CI_CLUSTER_GRID);
        let mut sharded = body.trim_end().to_string();
        if sharded.pop() != Some('}') {
            return Err("grid body must be a JSON object".to_string());
        }
        sharded.push_str(&format!(r#","shards":{shards}}}"#));
        ayd_serve::client::await_workers(
            &args.addr,
            args.workers,
            std::time::Duration::from_secs(30),
        )?;
        let csv = ayd_serve::client::fetch_sweep_csv(
            &args.addr,
            &sharded,
            std::time::Duration::from_secs(args.timeout_secs),
        )?;
        let out = args.out.as_ref().expect("parse_args enforces --out");
        std::fs::write(out, &csv).map_err(|e| format!("write {}: {e}", out.display()))?;
        println!(
            "loadgen --cluster-sweep: {} rows over {shards} shards -> {}",
            csv.lines().count() - 1,
            out.display()
        );
        return Ok(());
    }
    if args.cluster_check {
        ayd_serve::client::cluster_smoke_check(&args.addr, args.workers)?;
        println!(
            "loadgen --cluster-check: distributed round-trip passed against {} \
             ({} workers)",
            args.addr, args.workers
        );
        return Ok(());
    }
    if args.check {
        ayd_serve::smoke_check(&args.addr)?;
        println!(
            "loadgen --check: all round-trips passed against {}",
            args.addr
        );
        return Ok(());
    }
    let base = if args.cache_bust {
        LoadOptions::optimize_cache_busting(&args.addr, args.requests, args.concurrency)
    } else {
        LoadOptions::optimize(&args.addr, args.requests, args.concurrency)
    };
    let options = LoadOptions {
        idle_conns: args.idle_conns,
        slow_client_bytes_per_sec: args.slow_client,
        ..base
    };
    // Scrape before and after: the server must count exactly the requests
    // this client sends — a lost or double-counted request is a metrics bug,
    // whatever the latency report says.
    let baseline = endpoint_requests(&scrape_metrics(&args.addr)?, "optimize");
    let report = run_load(&options)?;
    println!("{}", report.render());
    if report.idle_conns < args.idle_conns {
        eprintln!(
            "loadgen: warning: held only {} of {} requested idle conns \
             (descriptor limit?)",
            report.idle_conns, args.idle_conns
        );
    }
    let accepted = report.requests - report.io_errors;
    await_request_delta(&args.addr, "optimize", baseline, accepted)?;
    println!("loadgen: metrics delta ok ({accepted} optimize requests counted server-side)");
    // The metrics endpoint must also stay valid after the run.
    let mut client =
        ayd_serve::HttpClient::connect(&args.addr).map_err(|e| format!("metrics connect: {e}"))?;
    let metrics = client
        .get("/metrics", None)
        .map_err(|e| format!("metrics fetch: {e}"))?;
    ayd_serve::validate_prometheus(&metrics.body).map_err(|e| format!("metrics: {e}"))?;
    if report.errors > 0 {
        return Err(format!(
            "{} of {} requests failed",
            report.errors, report.requests
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|args| run(&args)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("loadgen: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_defaults() {
        let args = parse_args(&strings(&["--addr", "127.0.0.1:9"])).unwrap();
        assert_eq!(args.addr, "127.0.0.1:9");
        assert_eq!(
            (args.requests, args.concurrency, args.cache_bust, args.check),
            (200, 8, false, false)
        );
        assert_eq!((args.idle_conns, args.slow_client), (0, None));
        let args = parse_args(&strings(&[
            "--addr",
            "x:1",
            "--requests",
            "50",
            "--concurrency",
            "2",
            "--cache-bust",
            "--idle-conns",
            "2000",
            "--slow-client",
            "1024",
            "--check",
        ]))
        .unwrap();
        assert_eq!(
            (args.requests, args.concurrency, args.cache_bust, args.check),
            (50, 2, true, true)
        );
        assert_eq!((args.idle_conns, args.slow_client), (2000, Some(1024)));
        assert!(parse_args(&strings(&[])).is_err());
        assert!(parse_args(&strings(&["--addr"])).is_err());
        assert!(parse_args(&strings(&["--addr", "x", "--bogus"])).is_err());
        // A zero drip rate would divide by zero downstream; reject it.
        assert!(parse_args(&strings(&["--addr", "x", "--slow-client", "0"])).is_err());
        assert!(parse_args(&strings(&["--addr", "x", "--idle-conns", "-1"])).is_err());
    }

    #[test]
    fn parses_cluster_flags() {
        let args = parse_args(&strings(&[
            "--addr",
            "x:1",
            "--cluster-check",
            "--workers",
            "2",
        ]))
        .unwrap();
        assert!(args.cluster_check);
        assert_eq!(args.workers, 2);

        let args = parse_args(&strings(&[
            "--addr",
            "x:1",
            "--cluster-sweep",
            "8",
            "--out",
            "cluster.csv",
            "--timeout-secs",
            "600",
        ]))
        .unwrap();
        assert_eq!(args.cluster_sweep, Some(8));
        assert_eq!(
            args.out.as_deref(),
            Some(std::path::Path::new("cluster.csv"))
        );
        assert_eq!(args.timeout_secs, 600);

        // The engine reference needs no server address.
        let args = parse_args(&strings(&["--engine-sweep", "--out", "ref.csv"])).unwrap();
        assert!(args.engine_sweep);

        assert!(parse_args(&strings(&["--addr", "x", "--cluster-sweep", "2"])).is_err());
        assert!(parse_args(&strings(&["--engine-sweep"])).is_err());
        assert!(parse_args(&strings(&[
            "--addr",
            "x",
            "--engine-sweep",
            "--cluster-sweep",
            "2",
            "--out",
            "a.csv"
        ]))
        .is_err());
        assert!(parse_args(&strings(&["--addr", "x", "--workers", "0"])).is_err());
        assert!(parse_args(&strings(&["--addr", "x", "--cluster-sweep", "0"])).is_err());
    }

    #[test]
    fn the_ci_cluster_grid_is_a_2304_cell_mixed_profile_grid() {
        let csv = ayd_serve::client::engine_sweep_csv(CI_CLUSTER_GRID).unwrap();
        assert_eq!(csv.lines().count() - 1, 2304);
    }
}
