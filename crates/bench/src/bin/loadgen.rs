//! `loadgen` — load generator and smoke checker for `reproduce serve`.
//!
//! ```text
//! loadgen --addr HOST:PORT [--requests N] [--concurrency C] [--cache-bust]
//!         [--idle-conns N] [--slow-client BYTES_PER_SEC] [--check]
//! ```
//!
//! Default mode drives `POST /v1/optimize` over `C` keep-alive connections,
//! prints a one-line throughput/latency report (p50/p90/p99/p99.9/max, with
//! an error-by-status breakdown when anything failed), checks the server-side
//! `ayd_requests_total{endpoint="optimize"}` delta against the number of
//! requests actually sent, validates the `/metrics`
//! payload and exits non-zero when any request failed. `--cache-bust` gives
//! every request a unique error rate so each evaluation misses the server's
//! cache (measuring the cold optimiser path). `--idle-conns N` additionally
//! holds N keep-alive connections that send nothing for the whole run
//! (connection-capacity stress; the report then includes the count held and
//! the server's own `ayd_open_connections` gauge). `--slow-client
//! BYTES_PER_SEC` drips every request's bytes at that rate instead of one
//! burst, exercising the server's partial-read path. `--check` instead runs
//! the end-to-end golden round-trip of `ayd_serve::smoke_check`: health, one
//! optimize query compared bit-for-bit against the offline evaluator, one
//! sweep job compared byte-for-byte against the in-process engine, the
//! cold-path latency bound, and a metrics parse.

use std::process::ExitCode;

use ayd_bench::loadgen::{
    await_request_delta, endpoint_requests, run_load, scrape_metrics, LoadOptions,
};

struct Args {
    addr: String,
    requests: usize,
    concurrency: usize,
    cache_bust: bool,
    idle_conns: usize,
    slow_client: Option<u64>,
    check: bool,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut addr = None;
    let mut requests = 200;
    let mut concurrency = 8;
    let mut cache_bust = false;
    let mut idle_conns = 0;
    let mut slow_client = None;
    let mut check = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => addr = Some(iter.next().ok_or("--addr requires a value")?.clone()),
            "--requests" => {
                requests = iter
                    .next()
                    .ok_or("--requests requires a value")?
                    .parse()
                    .map_err(|_| "invalid --requests value".to_string())?;
            }
            "--concurrency" => {
                concurrency = iter
                    .next()
                    .ok_or("--concurrency requires a value")?
                    .parse()
                    .map_err(|_| "invalid --concurrency value".to_string())?;
            }
            "--cache-bust" => cache_bust = true,
            "--idle-conns" => {
                idle_conns = iter
                    .next()
                    .ok_or("--idle-conns requires a value")?
                    .parse()
                    .map_err(|_| "invalid --idle-conns value".to_string())?;
            }
            "--slow-client" => {
                let rate: u64 = iter
                    .next()
                    .ok_or("--slow-client requires a BYTES_PER_SEC value")?
                    .parse()
                    .map_err(|_| "invalid --slow-client value".to_string())?;
                if rate == 0 {
                    return Err("--slow-client rate must be positive".to_string());
                }
                slow_client = Some(rate);
            }
            "--check" => check = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        addr: addr.ok_or(
            "usage: loadgen --addr HOST:PORT [--requests N] [--concurrency C] \
             [--cache-bust] [--idle-conns N] [--slow-client BYTES_PER_SEC] [--check]",
        )?,
        requests,
        concurrency,
        cache_bust,
        idle_conns,
        slow_client,
        check,
    })
}

fn run(args: &Args) -> Result<(), String> {
    if args.check {
        ayd_serve::smoke_check(&args.addr)?;
        println!(
            "loadgen --check: all round-trips passed against {}",
            args.addr
        );
        return Ok(());
    }
    let base = if args.cache_bust {
        LoadOptions::optimize_cache_busting(&args.addr, args.requests, args.concurrency)
    } else {
        LoadOptions::optimize(&args.addr, args.requests, args.concurrency)
    };
    let options = LoadOptions {
        idle_conns: args.idle_conns,
        slow_client_bytes_per_sec: args.slow_client,
        ..base
    };
    // Scrape before and after: the server must count exactly the requests
    // this client sends — a lost or double-counted request is a metrics bug,
    // whatever the latency report says.
    let baseline = endpoint_requests(&scrape_metrics(&args.addr)?, "optimize");
    let report = run_load(&options)?;
    println!("{}", report.render());
    if report.idle_conns < args.idle_conns {
        eprintln!(
            "loadgen: warning: held only {} of {} requested idle conns \
             (descriptor limit?)",
            report.idle_conns, args.idle_conns
        );
    }
    let accepted = report.requests - report.io_errors;
    await_request_delta(&args.addr, "optimize", baseline, accepted)?;
    println!("loadgen: metrics delta ok ({accepted} optimize requests counted server-side)");
    // The metrics endpoint must also stay valid after the run.
    let mut client =
        ayd_serve::HttpClient::connect(&args.addr).map_err(|e| format!("metrics connect: {e}"))?;
    let metrics = client
        .get("/metrics", None)
        .map_err(|e| format!("metrics fetch: {e}"))?;
    ayd_serve::validate_prometheus(&metrics.body).map_err(|e| format!("metrics: {e}"))?;
    if report.errors > 0 {
        return Err(format!(
            "{} of {} requests failed",
            report.errors, report.requests
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|args| run(&args)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("loadgen: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_defaults() {
        let args = parse_args(&strings(&["--addr", "127.0.0.1:9"])).unwrap();
        assert_eq!(args.addr, "127.0.0.1:9");
        assert_eq!(
            (args.requests, args.concurrency, args.cache_bust, args.check),
            (200, 8, false, false)
        );
        assert_eq!((args.idle_conns, args.slow_client), (0, None));
        let args = parse_args(&strings(&[
            "--addr",
            "x:1",
            "--requests",
            "50",
            "--concurrency",
            "2",
            "--cache-bust",
            "--idle-conns",
            "2000",
            "--slow-client",
            "1024",
            "--check",
        ]))
        .unwrap();
        assert_eq!(
            (args.requests, args.concurrency, args.cache_bust, args.check),
            (50, 2, true, true)
        );
        assert_eq!((args.idle_conns, args.slow_client), (2000, Some(1024)));
        assert!(parse_args(&strings(&[])).is_err());
        assert!(parse_args(&strings(&["--addr"])).is_err());
        assert!(parse_args(&strings(&["--addr", "x", "--bogus"])).is_err());
        // A zero drip rate would divide by zero downstream; reject it.
        assert!(parse_args(&strings(&["--addr", "x", "--slow-client", "0"])).is_err());
        assert!(parse_args(&strings(&["--addr", "x", "--idle-conns", "-1"])).is_err());
    }
}
