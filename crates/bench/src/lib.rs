//! Shared helpers for the Criterion benchmark harness.
//!
//! Every bench target regenerates one table or figure of the paper: it first
//! runs the corresponding `ayd-exp` runner once and prints the rendered rows
//! (so the bench output contains the reproduced series), then times a
//! representative slice of the computation with Criterion.
//!
//! [`loadgen`] holds the `ayd-serve` load generator shared by the `loadgen`
//! binary, the `serve_throughput` bench and the CI smoke step.

pub mod loadgen;

use ayd_exp::config::RunOptions;

/// Run options used for the series printed by the benches: smoke-level
/// simulation so a full `cargo bench` stays fast while still exercising the
/// simulator.
pub fn print_options() -> RunOptions {
    RunOptions::smoke()
}

/// Run options used inside the timed Criterion closures: analytical +
/// numerical only (no simulation), so a single iteration stays in the
/// millisecond range and Criterion can sample it meaningfully.
pub fn timed_options() -> RunOptions {
    RunOptions {
        simulate: false,
        ..RunOptions::smoke()
    }
}

/// Prints a rendered table with a separating banner, so figure rows are easy to
/// locate in the bench log.
pub fn print_table(table: &ayd_exp::TextTable) {
    println!("\n================================================================");
    println!("{}", table.render());
}
