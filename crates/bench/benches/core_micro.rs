//! Micro-benchmarks of the core analytical kernels: the exact pattern model
//! (Proposition 1), the first-order closed forms (Theorems 1–3), the numerical
//! `(P, T)` optimiser and a single simulated pattern batch.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ayd_core::{FirstOrder, SpeedupProfile};
use ayd_exp::Evaluator;
use ayd_platforms::{ExperimentSetup, PlatformId, ScenarioId};
use ayd_sim::{SimulationConfig, Simulator};

fn bench_core(c: &mut Criterion) {
    let model = ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S1)
        .model()
        .unwrap();

    c.bench_function("exact_pattern_time", |b| {
        b.iter(|| model.expected_pattern_time(black_box(6_000.0), black_box(400.0)))
    });

    c.bench_function("exact_overhead", |b| {
        b.iter(|| model.expected_overhead(black_box(6_000.0), black_box(400.0)))
    });

    c.bench_function("first_order_joint_optimum", |b| {
        b.iter(|| FirstOrder::new(&model).joint_optimum().unwrap())
    });

    c.bench_function("first_order_period_for_fixed_p", |b| {
        b.iter(|| FirstOrder::new(&model).optimal_period_for(black_box(512.0)))
    });

    c.bench_function("numerical_joint_optimum", |b| {
        let evaluator = Evaluator::new(ayd_bench::timed_options());
        b.iter(|| evaluator.numerical_point(&model))
    });

    c.bench_function("amdahl_speedup", |b| {
        let profile = SpeedupProfile::amdahl(0.1).unwrap();
        b.iter(|| profile.speedup(black_box(512.0)))
    });

    c.bench_function("simulate_small_batch", |b| {
        let simulator = Simulator::new(model);
        let config = SimulationConfig {
            runs: 4,
            patterns_per_run: 25,
            ..Default::default()
        };
        b.iter(|| simulator.simulate_overhead(black_box(6_000.0), black_box(400.0), &config))
    });
}

criterion_group!(benches, bench_core);
criterion_main!(benches);
