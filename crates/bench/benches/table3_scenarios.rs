//! Table III — resilience scenarios and the cost coefficients fitted to every
//! platform. Prints the reproduced table and times the fitting.

use criterion::{criterion_group, criterion_main, Criterion};

use ayd_exp::tables;

fn bench_table3(c: &mut Criterion) {
    let data = tables::table3();
    ayd_bench::print_table(&tables::render_table3(&data));

    c.bench_function("table3_fit_all_scenarios", |b| b.iter(tables::table3));
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
