//! Ablation A2 — window-sampling vs event-stream simulation engines: both
//! implement the same stochastic process, so their simulated overheads must
//! agree within Monte-Carlo noise (and with the analytical expectation).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ayd_exp::ablation;
use ayd_platforms::{ExperimentSetup, PlatformId, ScenarioId};
use ayd_sim::{EngineKind, SimulationConfig, Simulator};

fn bench_engines(c: &mut Criterion) {
    let data = ablation::run_engine_comparison(&ayd_bench::print_options());
    ayd_bench::print_table(&ablation::render_engine_comparison(&data));

    let model = ExperimentSetup::paper_default(PlatformId::Hera, ScenarioId::S1)
        .model()
        .unwrap();
    let simulator = Simulator::new(model);
    let config = SimulationConfig {
        runs: 4,
        patterns_per_run: 25,
        ..Default::default()
    };

    let mut group = c.benchmark_group("engines");
    group.bench_function("window_sampling", |b| {
        b.iter(|| simulator.simulate_overhead(black_box(6_000.0), black_box(400.0), &config))
    });
    group.bench_function("event_stream", |b| {
        let config = config.with_engine(EngineKind::EventStream);
        b.iter(|| simulator.simulate_overhead(black_box(6_000.0), black_box(400.0), &config))
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
