//! Figure 2 — optimal patterns (P*, T*, overhead) for the six resilience
//! scenarios on the four platforms. Prints the reproduced series (with
//! smoke-level simulation) and times the analytical/numerical part for one
//! platform.

use criterion::{criterion_group, criterion_main, Criterion};

use ayd_exp::figure2;
use ayd_platforms::PlatformId;

fn bench_fig2(c: &mut Criterion) {
    let data = figure2::run(&ayd_bench::print_options());
    ayd_bench::print_table(&figure2::render(&data));

    let mut group = c.benchmark_group("fig2");
    group.sample_size(20);
    group.bench_function("hera_all_scenarios_analytical", |b| {
        b.iter(|| figure2::run_platform(PlatformId::Hera, &ayd_bench::timed_options()))
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
