//! Figure 4 — optimal pattern versus the sequential fraction α on Hera.
//! Prints the reproduced series and times the sweep.

use criterion::{criterion_group, criterion_main, Criterion};

use ayd_exp::figure4;

fn bench_fig4(c: &mut Criterion) {
    let data = figure4::run(&ayd_bench::print_options());
    ayd_bench::print_table(&figure4::render(&data));

    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("alpha_sweep_analytical", |b| {
        b.iter(|| figure4::run_with_alphas(&[1e-4, 1e-3, 1e-2, 1e-1], &ayd_bench::timed_options()))
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
