//! Figure 6 — optimal pattern versus λ_ind for a perfectly parallel job
//! (α = 0, numerical optimum only), with the fitted asymptotic exponents.
//! Prints the reproduced series and times the sweep.

use criterion::{criterion_group, criterion_main, Criterion};

use ayd_exp::figure6;

fn bench_fig6(c: &mut Criterion) {
    let data = figure6::run(&ayd_bench::print_options());
    ayd_bench::print_table(&figure6::render(&data));
    ayd_bench::print_table(&figure6::render_slopes(&data));

    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("alpha_zero_sweep", |b| {
        b.iter(|| figure6::run_with(&[1e-10, 1e-9, 1e-8], &ayd_bench::timed_options()))
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
