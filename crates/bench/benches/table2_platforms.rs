//! Table II — platform parameters. Prints the reproduced table and times the
//! catalogue construction.

use criterion::{criterion_group, criterion_main, Criterion};

use ayd_exp::tables;

fn bench_table2(c: &mut Criterion) {
    let data = tables::table2();
    ayd_bench::print_table(&tables::render_table2(&data));

    c.bench_function("table2_build_and_render", |b| {
        b.iter(|| tables::render_table2(&tables::table2()).render())
    });
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
