//! Sweep-engine throughput: a 1,000+-cell analytical grid through the parallel
//! `ayd-sweep` executor. Prints a summary (cell count, wall time, cache
//! counters) and times the executor single-threaded, multi-threaded and with
//! the memoisation cache disabled — the acceptance target is a 1,000-cell
//! no-simulation sweep in well under 5 s in release mode.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use ayd_exp::sweep::{demo_grid, demo_grid_with_profiles};
use ayd_sweep::{
    merge_parts, CacheStats, ScenarioGrid, ShardPart, ShardSpec, SpeedupProfile, SweepExecutor,
    SweepManifest, SweepOptions,
};

fn thousand_cell_grid() -> ScenarioGrid {
    // The CLI's analytical demo grid: 4 platforms × 6 scenarios × 2 α ×
    // 2 λ-multipliers × 3 processor counts × 4 pattern lengths = 1152 cells.
    demo_grid(false)
}

fn mixed_profile_grid() -> ScenarioGrid {
    // The same grid with the application axis swapped for one profile of each
    // family — the non-Amdahl cells exercise the numerical-only fallback.
    demo_grid_with_profiles(
        false,
        Some(&[
            SpeedupProfile::Amdahl { alpha: 0.1 },
            SpeedupProfile::PowerLaw { sigma: 0.8 },
            SpeedupProfile::Gustafson { alpha: 0.05 },
            SpeedupProfile::PerfectlyParallel,
        ]),
    )
}

/// In-run cache hit rate of one sweep over a single-profile grid, starting
/// from a cold per-run cache. The grid crosses 4 pattern lengths with the
/// other axes, so every optimiser evaluation is revisited 4× within the run
/// (1 miss + 3 hits → a 75% steady-state hit rate); that deduplication rate
/// is the cache-design acceptance number EXPERIMENTS.md records.
fn warm_hit_rate(profile: SpeedupProfile) -> CacheStats {
    let grid = demo_grid_with_profiles(false, Some(&[profile]));
    let options = SweepOptions::new(ayd_bench::timed_options());
    SweepExecutor::new(options).run(&grid).cache
}

fn bench_sweep(c: &mut Criterion) {
    let grid = thousand_cell_grid();
    let options = SweepOptions::new(ayd_bench::timed_options());

    // Warm-cache hit-rate parity: the memoisation layer must not privilege
    // the Amdahl fast path — a power-law grid of identical shape deduplicates
    // exactly as well (EXPERIMENTS.md records this pair).
    let amdahl = warm_hit_rate(SpeedupProfile::Amdahl { alpha: 0.1 });
    let powerlaw = warm_hit_rate(SpeedupProfile::PowerLaw { sigma: 0.8 });
    println!("\n================================================================");
    println!(
        "sweep_throughput: warm-cache hit rate amdahl:0.1 = {:.4} ({} hits / {} misses), \
         powerlaw:0.8 = {:.4} ({} hits / {} misses)",
        amdahl.hit_rate(),
        amdahl.hits,
        amdahl.misses,
        powerlaw.hit_rate(),
        powerlaw.hits,
        powerlaw.misses,
    );
    assert!(
        (amdahl.hit_rate() - powerlaw.hit_rate()).abs() < 1e-12,
        "hit-rate parity broke: amdahl {:?} vs powerlaw {:?}",
        amdahl,
        powerlaw
    );

    let start = Instant::now();
    let results = SweepExecutor::new(options).run(&grid);
    let elapsed = start.elapsed();
    println!("\n================================================================");
    println!(
        "sweep_throughput: {} cells in {elapsed:.2?} ({:.0} cells/s), cache {} hits / {} misses / {} evictions",
        results.rows.len(),
        results.rows.len() as f64 / elapsed.as_secs_f64(),
        results.cache.hits,
        results.cache.misses,
        results.cache.evictions,
    );
    assert_eq!(results.rows.len(), grid.len());
    assert!(results.rows.len() >= 1_000);

    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("grid_1152_cells_all_threads", |b| {
        b.iter(|| SweepExecutor::new(options).run(&grid))
    });
    group.bench_function("grid_1152_cells_one_thread", |b| {
        b.iter(|| SweepExecutor::new(options.with_threads(1)).run(&grid))
    });
    group.bench_function("grid_1152_cells_no_cache", |b| {
        b.iter(|| SweepExecutor::new(options.with_cache_capacity(None)).run(&grid))
    });
    let mixed = mixed_profile_grid();
    assert_eq!(mixed.len(), 4 * 6 * 4 * 2 * 3 * 4);
    group.bench_function("grid_2304_cells_mixed_profiles", |b| {
        b.iter(|| SweepExecutor::new(options).run(&mixed))
    });

    // Sharded execution of the 2304-cell mixed grid: 3 shard runs plus the
    // deterministic merge. Checked byte-identical to the unsharded CSV once
    // up front (the merge itself is part of the timed path, so the bench
    // reflects the real end-to-end sharded pipeline cost).
    let run_sharded = |count: usize| -> String {
        let parts: Vec<ShardPart> = (0..count)
            .map(|index| {
                let shard = ShardSpec::new(index, count).unwrap();
                ShardPart {
                    manifest: SweepManifest::complete(&mixed, &options, shard),
                    csv: SweepExecutor::new(options)
                        .run_cells(&mixed.shard_cells(shard))
                        .to_csv(),
                }
            })
            .collect();
        merge_parts(&parts).expect("complete shard partition merges")
    };
    let start = Instant::now();
    let merged = run_sharded(3);
    let sharded_elapsed = start.elapsed();
    let start = Instant::now();
    let unsharded = SweepExecutor::new(options).run(&mixed).to_csv();
    let unsharded_elapsed = start.elapsed();
    assert_eq!(merged, unsharded, "sharded merge must be byte-identical");
    println!("\n================================================================");
    println!(
        "sweep_throughput: 2304-cell mixed grid — unsharded {unsharded_elapsed:.2?}, \
         3 shards + merge {sharded_elapsed:.2?} (EXPERIMENTS.md records this pair)",
    );
    group.bench_function("grid_2304_cells_sharded_3_plus_merge", |b| {
        b.iter(|| run_sharded(3))
    });
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
