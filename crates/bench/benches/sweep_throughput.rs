//! Sweep-engine throughput: a 1,000+-cell analytical grid through the parallel
//! `ayd-sweep` executor. Prints a summary (cell count, wall time, cache
//! counters) and times the executor single-threaded, multi-threaded and with
//! the memoisation cache disabled — the acceptance target is a 1,000-cell
//! no-simulation sweep in well under 5 s in release mode.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use ayd_exp::sweep::demo_grid;
use ayd_sweep::{ScenarioGrid, SweepExecutor, SweepOptions};

fn thousand_cell_grid() -> ScenarioGrid {
    // The CLI's analytical demo grid: 4 platforms × 6 scenarios × 2 α ×
    // 2 λ-multipliers × 3 processor counts × 4 pattern lengths = 1152 cells.
    demo_grid(false)
}

fn bench_sweep(c: &mut Criterion) {
    let grid = thousand_cell_grid();
    let options = SweepOptions::new(ayd_bench::timed_options());

    let start = Instant::now();
    let results = SweepExecutor::new(options).run(&grid);
    let elapsed = start.elapsed();
    println!("\n================================================================");
    println!(
        "sweep_throughput: {} cells in {elapsed:.2?} ({:.0} cells/s), cache {} hits / {} misses / {} evictions",
        results.rows.len(),
        results.rows.len() as f64 / elapsed.as_secs_f64(),
        results.cache.hits,
        results.cache.misses,
        results.cache.evictions,
    );
    assert_eq!(results.rows.len(), grid.len());
    assert!(results.rows.len() >= 1_000);

    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("grid_1152_cells_all_threads", |b| {
        b.iter(|| SweepExecutor::new(options).run(&grid))
    });
    group.bench_function("grid_1152_cells_one_thread", |b| {
        b.iter(|| SweepExecutor::new(options.with_threads(1)).run(&grid))
    });
    group.bench_function("grid_1152_cells_no_cache", |b| {
        b.iter(|| SweepExecutor::new(options.with_cache_capacity(None)).run(&grid))
    });
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
