//! Figure 5 — optimal pattern versus the individual error rate λ_ind on Hera
//! (α = 0.1), together with the fitted asymptotic exponents (Θ(λ^-1/4),
//! Θ(λ^-1/3), ...). Prints the reproduced series and times the sweep.

use criterion::{criterion_group, criterion_main, Criterion};

use ayd_exp::figure5;

fn bench_fig5(c: &mut Criterion) {
    let data = figure5::run(&ayd_bench::print_options());
    ayd_bench::print_table(&figure5::render(&data));
    ayd_bench::print_table(&figure5::render_slopes(&data));

    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("lambda_sweep_analytical", |b| {
        b.iter(|| {
            figure5::run_with(
                &[1e-11, 1e-10, 1e-9, 1e-8],
                0.1,
                &ayd_bench::timed_options(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
