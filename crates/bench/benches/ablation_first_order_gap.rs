//! Ablation A1 — overhead gap between the first-order period and the
//! numerically optimal period as the processor count approaches the validity
//! bound of the Taylor expansion (Inequality (5)).

use criterion::{criterion_group, criterion_main, Criterion};

use ayd_exp::ablation;

fn bench_ablation_gap(c: &mut Criterion) {
    let data = ablation::run_first_order_gap(&ayd_bench::timed_options());
    ayd_bench::print_table(&ablation::render_first_order_gap(&data));

    let mut group = c.benchmark_group("ablation");
    group.sample_size(20);
    group.bench_function("first_order_gap_sweep", |b| {
        b.iter(|| ablation::run_first_order_gap(&ayd_bench::timed_options()))
    });
    group.finish();
}

criterion_group!(benches, bench_ablation_gap);
criterion_main!(benches);
