//! Extension E1 — optimal patterns for non-Amdahl speedup profiles (the
//! paper's future-work direction), computed with the numerical optimiser.

use criterion::{criterion_group, criterion_main, Criterion};

use ayd_exp::extensions;

fn bench_extensions(c: &mut Criterion) {
    let data = extensions::run(&ayd_bench::print_options());
    ayd_bench::print_table(&extensions::render(&data));

    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);
    group.bench_function("speedup_profiles_analytical", |b| {
        b.iter(|| extensions::run(&ayd_bench::timed_options()))
    });
    group.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
