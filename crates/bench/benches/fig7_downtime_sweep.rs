//! Figure 7 — optimal pattern versus the downtime D on Hera (α = 0.1).
//! Prints the reproduced series and times the sweep.

use criterion::{criterion_group, criterion_main, Criterion};

use ayd_exp::figure7;

fn bench_fig7(c: &mut Criterion) {
    let data = figure7::run(&ayd_bench::print_options());
    ayd_bench::print_table(&figure7::render(&data));

    let mut group = c.benchmark_group("fig7");
    group.sample_size(20);
    group.bench_function("downtime_sweep_analytical", |b| {
        b.iter(|| {
            figure7::run_with_downtimes(&[0.0, 3_600.0, 10_800.0], &ayd_bench::timed_options())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
