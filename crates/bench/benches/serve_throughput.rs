//! Serving throughput: an in-process `ayd-serve` instance under the keep-alive
//! load generator, plus a Criterion timing of a single cache-warm
//! `/v1/optimize` round-trip over loopback.
//!
//! The printed load report is the EXPERIMENTS.md acceptance measurement: with
//! the shared cache warm, `/v1/optimize` must sustain ≥ 10k req/s.

use criterion::{criterion_group, criterion_main, Criterion};

use ayd_bench::loadgen::{run_load, LoadOptions};
use ayd_serve::{HttpClient, Server, ServerConfig};

fn bench_serve(c: &mut Criterion) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    })
    .expect("bind the bench server");
    let handle = server.handle().expect("server handle");
    let addr = handle.addr().to_string();
    let state = server.state();
    let server_thread = std::thread::spawn(move || server.serve());

    // Warm the shared cache, then measure sustained throughput.
    let warmup = run_load(&LoadOptions::optimize(&addr, 200, 4)).expect("warm-up load");
    assert_eq!(warmup.errors, 0, "warm-up saw request errors");
    let report = run_load(&LoadOptions::optimize(&addr, 3_000, 4)).expect("main load");
    println!("\n================================================================");
    println!("serve_throughput (cache warm): {}", report.render());
    println!(
        "serve_throughput: shared cache {:?} over {} entries",
        state.cache.stats(),
        state.cache.len(),
    );
    assert_eq!(report.errors, 0, "load run saw request errors");
    assert!(report.req_per_s > 0.0);

    let mut group = c.benchmark_group("serve");
    group.sample_size(20);
    group.bench_function("optimize_round_trip_keepalive", |b| {
        let mut client = HttpClient::connect(&addr).expect("bench client");
        let body = r#"{"platform":"Hera","scenario":1,"lambda_multiplier":10}"#;
        b.iter(|| {
            let response = client.post_json("/v1/optimize", body).expect("round trip");
            assert_eq!(response.status, 200);
        })
    });
    group.bench_function("optimize_powerlaw_round_trip_keepalive", |b| {
        // A non-Amdahl profile through the generic `profile` field: the
        // numerical-only fallback served from the same shared cache.
        let mut client = HttpClient::connect(&addr).expect("bench client");
        let body = r#"{"platform":"Hera","scenario":1,"profile":"powerlaw:0.8"}"#;
        b.iter(|| {
            let response = client.post_json("/v1/optimize", body).expect("round trip");
            assert_eq!(response.status, 200);
        })
    });
    group.bench_function("healthz_round_trip_keepalive", |b| {
        let mut client = HttpClient::connect(&addr).expect("bench client");
        b.iter(|| {
            let response = client.get("/healthz", None).expect("round trip");
            assert_eq!(response.status, 200);
        })
    });
    group.finish();

    handle.shutdown();
    server_thread.join().expect("server thread").expect("serve");
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
