//! Figure 3 — optimal period, overhead and first-order gap versus processor
//! count on Hera. Prints the reproduced series and times the sweep.

use criterion::{criterion_group, criterion_main, Criterion};

use ayd_exp::figure3;

fn bench_fig3(c: &mut Criterion) {
    let data = figure3::run(&ayd_bench::print_options());
    ayd_bench::print_table(&figure3::render(&data));

    let mut group = c.benchmark_group("fig3");
    group.sample_size(20);
    group.bench_function("processor_sweep_analytical", |b| {
        b.iter(|| {
            figure3::run_with_processors(
                &[200.0, 600.0, 1_000.0, 1_400.0],
                &ayd_bench::timed_options(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
