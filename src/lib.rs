//! # amdahl-young-daly — facade crate
//!
//! Umbrella crate for the reproduction of *"When Amdahl Meets Young/Daly"*
//! (Cavelan, Li, Robert, Sun — IEEE Cluster 2016). It re-exports the public API of
//! every workspace crate so downstream users can depend on a single package:
//!
//! * [`model`] (`ayd-core`) — speedup profiles, resilience cost models, the exact
//!   pattern model (Proposition 1) and the first-order optima (Theorems 1–3).
//! * [`optim`] (`ayd-optim`) — numerical optimisation of the exact model
//!   (golden-section, Brent, integer and joint `(T, P)` searches).
//! * [`platforms`] (`ayd-platforms`) — the four SCR platforms of Table II and the
//!   six resilience scenarios of Table III.
//! * [`sim`] (`ayd-sim`) — discrete-event simulation of the VC protocol with
//!   fail-stop and silent error injection.
//! * [`sweep`] (`ayd-sweep`) — parallel scenario-sweep engine: cartesian
//!   scenario grids, a deterministic work-stealing executor, memoised model
//!   evaluation and streaming CSV sinks.
//! * [`serve`] (`ayd-serve`) — zero-dependency concurrent HTTP/1.1 query
//!   service over the optimiser: single/batch queries, async sweep jobs, a
//!   process-wide sharded evaluation cache and Prometheus metrics.
//! * [`exp`] (`ayd-exp`) — the experiment harness that regenerates every table and
//!   figure of the paper's evaluation section.
//!
//! See `examples/quickstart.rs` for a guided tour and `EXPERIMENTS.md` for the
//! paper-versus-measured record.

#![deny(missing_docs)]

pub use ayd_core as model;
pub use ayd_exp as exp;
pub use ayd_optim as optim;
pub use ayd_platforms as platforms;
pub use ayd_serve as serve;
pub use ayd_sim as sim;
pub use ayd_sweep as sweep;

/// Frequently used items from every crate, re-exported flat.
pub mod prelude {
    pub use ayd_core::prelude::*;
    pub use ayd_optim::{JointSearch, OptimizeOptions};
    pub use ayd_platforms::{Platform, PlatformId, Scenario, ScenarioId};
    pub use ayd_serve::{Server, ServerConfig};
    pub use ayd_sim::{SimulationConfig, Simulator};
    pub use ayd_sweep::{RunOptions, ScenarioGrid, SweepExecutor, SweepOptions};
}
